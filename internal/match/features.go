package match

import (
	"math"
	"sync"
	"sync/atomic"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// targetPrecomputes counts PrecomputeTarget invocations process-wide,
// so tests can assert that prepared-target matching rescans no catalog
// columns.
var targetPrecomputes atomic.Int64

// TargetPrecomputes returns how many times a target feature layer has
// been computed in this process.
func TargetPrecomputes() int64 { return targetPrecomputes.Load() }

// TargetFeatures holds the per-column derived features of one target
// schema — interned-gram ID vectors for string columns, numeric slices
// for number columns, attribute-name gram vectors — plus the gram
// dictionary they are keyed by, all precomputed once so that repeated
// Bind calls against the same long-lived target catalog skip the column
// scans and share one ID space. The struct is immutable after the
// owning dictionary is frozen and is then safe to share between
// concurrent Bounds.
type TargetFeatures struct {
	tgt       *relational.Schema
	maxValues int
	dict      *tokenize.Dict
	ngrams    map[colKey]*tokenize.IDVector
	numbers   map[colKey][]float64
	numRanges map[colKey][2]float64
	names     map[string]*tokenize.IDVector

	// colOrder records, per string column, the shared-dictionary IDs of
	// the column's distinct grams in first-appearance (column-local
	// insertion) order — the MergeInto remap of the build. A delta
	// rebuild replays this order to reassign untouched columns' grams
	// into a fresh dictionary without rescanning any rows. Nil on layers
	// restored from snapshots, which therefore cannot delta-update.
	colOrder map[colKey][]uint32

	// strCols lists the string-domain target columns in schema order —
	// the dense column numbering of the candidate index — and colDense
	// inverts it. index is the inverted gram-ID candidate index over
	// those columns (nil when the engine runs Exhaustive).
	strCols  []colKey
	colDense map[colKey]int
	index    *tokenize.Index
}

// PrecomputeTarget scans every column of tgt once and returns the shared
// feature set for the engine's configured matchers, interning all catalog
// grams into a fresh dictionary that is frozen before returning. The
// n-gram value cap is taken from the engine's ValueNGramMatcher so shared
// vectors are identical to the ones a private FeatureCache would build.
func (e *Engine) PrecomputeTarget(tgt *relational.Schema) *TargetFeatures {
	d := tokenize.NewDict()
	tf := e.PrecomputeTargetInto(tgt, d)
	d.Freeze()
	return tf
}

// PrecomputeTargetInto is PrecomputeTarget against a caller-owned
// dictionary that must still be building; the caller freezes it once
// every artifact sharing the ID space (e.g. frozen classifiers) has
// been compiled into it.
func (e *Engine) PrecomputeTargetInto(tgt *relational.Schema, d *tokenize.Dict) *TargetFeatures {
	return e.PrecomputeTargetParallel(tgt, d, 1)
}

// PrecomputeTargetParallel is PrecomputeTargetInto with the per-column
// scans fanned across up to workers goroutines. Each column's grams are
// interned into a column-local dictionary, and the locals merge into d
// sequentially in schema order — reproducing exactly the ID assignment
// of a single sequential pass, so the resulting feature layer is
// bit-identical at any worker count. Attribute-name vectors intern
// after every column (the canonical order all worker counts share), and
// the candidate index builds last, over the final vectors.
func (e *Engine) PrecomputeTargetParallel(tgt *relational.Schema, d *tokenize.Dict, workers int) *TargetFeatures {
	targetPrecomputes.Add(1)
	tf := &TargetFeatures{
		tgt:       tgt,
		maxValues: e.ngramMaxValues(),
		dict:      d,
		ngrams:    map[colKey]*tokenize.IDVector{},
		numbers:   map[colKey][]float64{},
		numRanges: map[colKey][2]float64{},
		names:     map[string]*tokenize.IDVector{},
		colOrder:  map[colKey][]uint32{},
	}
	if tgt == nil {
		return tf
	}
	type job struct {
		t      *relational.Table
		attr   string
		domain relational.Domain
	}
	var jobs []job
	for _, tt := range tgt.Tables {
		for _, a := range tt.Attrs {
			if dom := a.Type.Domain(); dom == relational.DomainString || dom == relational.DomainNumber {
				jobs = append(jobs, job{tt, a.Name, dom})
			}
		}
	}
	type slot struct {
		local *tokenize.Dict
		vec   *tokenize.IDVector
		nums  []float64
	}
	slots := make([]slot, len(jobs))
	var builders sync.Pool
	builders.New = func() any { return tokenize.NewVectorBuilder() }
	ForEachIndex(len(jobs), workers, func(i int) {
		b := builders.Get().(*tokenize.VectorBuilder)
		defer builders.Put(b)
		j := jobs[i]
		switch j.domain {
		case relational.DomainString:
			ld := tokenize.NewDict()
			slots[i] = slot{local: ld, vec: buildColumnVector(b, ld, j.t, j.attr, tf.maxValues)}
		case relational.DomainNumber:
			slots[i] = slot{nums: numericColumn(j.t, j.attr)}
		}
	})
	for i, j := range jobs {
		key := colKey{j.t, j.attr}
		switch j.domain {
		case relational.DomainString:
			remap := slots[i].local.MergeInto(d)
			tf.ngrams[key] = tokenize.Remapped(slots[i].vec, remap)
			tf.colOrder[key] = remap
			tf.strCols = append(tf.strCols, key)
		case relational.DomainNumber:
			tf.numbers[key] = slots[i].nums
			if !e.Exhaustive {
				// Per-column range statistics ride with the candidate
				// subsystem; the Exhaustive baseline rescans per pair.
				tf.numRanges[key] = numericRange(slots[i].nums)
			}
		}
	}
	b := tokenize.NewVectorBuilder()
	for _, tt := range tgt.Tables {
		for _, a := range tt.Attrs {
			if _, ok := tf.names[a.Name]; !ok {
				b.AddTrigrams(d, a.Name)
				tf.names[a.Name] = b.Build()
			}
		}
	}
	if !e.Exhaustive && len(tf.strCols) > 0 {
		cols := make([]*tokenize.IDVector, len(tf.strCols))
		tf.colDense = make(map[colKey]int, len(tf.strCols))
		for i, key := range tf.strCols {
			cols[i] = tf.ngrams[key]
			tf.colDense[key] = i
		}
		tf.index = tokenize.BuildIndex(cols, d.Len())
	}
	return tf
}

// buildColumnVector aggregates the trigram vector of one column through
// the shared builder: at most maxValues non-null values (0 = all). Rows
// are walked in place — no intermediate column slice.
func buildColumnVector(b *tokenize.VectorBuilder, d *tokenize.Dict, t *relational.Table, attr string, maxValues int) *tokenize.IDVector {
	i := t.AttrIndex(attr)
	if i < 0 {
		return b.Build()
	}
	n := 0
	for _, row := range t.Rows {
		v := row[i]
		if v.IsNull() {
			continue
		}
		b.AddTrigrams(d, v.Str())
		n++
		if maxValues > 0 && n >= maxValues {
			break
		}
	}
	return b.Build()
}

// numericRange returns the [min, max] of vals (+Inf, -Inf when empty),
// accumulated with math.Min/Max in slice order — the same fold a
// pairwise scan performs, so combining two cached ranges reproduces the
// combined scan bit-for-bit.
func numericRange(vals []float64) [2]float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return [2]float64{lo, hi}
}

// numericColumn collects the column's parseable numeric values.
func numericColumn(t *relational.Table, attr string) []float64 {
	out := []float64{}
	i := t.AttrIndex(attr)
	if i < 0 {
		return out
	}
	for _, row := range t.Rows {
		if x, ok := row[i].Float(); ok {
			out = append(out, x)
		}
	}
	return out
}

// ngramMaxValues returns the value cap of the engine's ValueNGramMatcher
// (0 when absent or uncapped); the cap is part of a cached vector's
// identity, so shared features must be built with the same one.
func (e *Engine) ngramMaxValues() int {
	for _, m := range e.Matchers {
		if ng, ok := m.(ValueNGramMatcher); ok {
			return ng.MaxValues
		}
	}
	return 0
}

// Target returns the schema the features were computed for.
func (tf *TargetFeatures) Target() *relational.Schema { return tf.tgt }

// Dict returns the frozen gram dictionary shared by every vector in the
// layer (and by any frozen classifiers compiled into the same ID
// space).
func (tf *TargetFeatures) Dict() *tokenize.Dict { return tf.dict }

// Columns returns how many column feature vectors (n-gram and numeric)
// the layer holds — the size figure a serving layer reports per
// prepared catalog.
func (tf *TargetFeatures) Columns() int {
	if tf == nil {
		return 0
	}
	return len(tf.ngrams) + len(tf.numbers)
}

// MaxValues returns the per-column value cap the layer's n-gram vectors
// were built under (0 = uncapped). A retrieval layer building source
// vectors to probe this layer's index uses the same cap so both sides
// sample columns identically.
func (tf *TargetFeatures) MaxValues() int {
	if tf == nil {
		return 0
	}
	return tf.maxValues
}

// Index returns the inverted gram-ID candidate index over the layer's
// string columns, or nil when the layer was built exhaustively (or
// holds no string columns).
func (tf *TargetFeatures) Index() *tokenize.Index {
	if tf == nil {
		return nil
	}
	return tf.index
}

// IndexStats snapshots the candidate index's size and retrieval
// counters (zero when the layer has no index).
func (tf *TargetFeatures) IndexStats() tokenize.IndexStats {
	if tf == nil {
		return tokenize.IndexStats{}
	}
	return tf.index.Stats()
}

// covers reports whether the layer can answer every target-side feature
// lookup of a Bind against tgt with the given n-gram cap — the
// precondition for the column-parallel bind path, whose normalization
// pass must be read-only on the cache.
func (tf *TargetFeatures) covers(tgt *relational.Schema, maxValues int) bool {
	return tf != nil && tf.tgt == tgt && tf.maxValues == maxValues
}
