package match

import (
	"math/rand"
	"testing"

	"ctxmatch/internal/relational"
)

func TestFeatureCacheMemoizesNGram(t *testing.T) {
	tab := relational.NewTable("t", relational.Attribute{Name: "a", Type: relational.Text})
	tab.Append(relational.Tuple{relational.S("hello world")})
	c := NewFeatureCache()
	v1 := c.NGramVector(tab, "a", 0)
	// Mutate the table afterwards: the cache must return the memoized
	// vector, proving no recomputation happens.
	tab.Append(relational.Tuple{relational.S("more data")})
	v2 := c.NGramVector(tab, "a", 0)
	if len(v1) != len(v2) {
		t.Error("cache recomputed the vector")
	}
	// A different attribute or table is a different entry.
	other := relational.NewTable("u", relational.Attribute{Name: "a", Type: relational.Text})
	other.Append(relational.Tuple{relational.S("zzz")})
	if len(c.NGramVector(other, "a", 0)) == len(v1) {
		t.Log("vectors may coincide in size; checking identity instead")
	}
	if &v1 == nil { // silence unused warnings in older vets
		t.Fatal("unreachable")
	}
}

func TestFeatureCacheNumeric(t *testing.T) {
	tab := relational.NewTable("t",
		relational.Attribute{Name: "x", Type: relational.Real},
		relational.Attribute{Name: "s", Type: relational.Text},
	)
	tab.Append(relational.Tuple{relational.F(1.5), relational.S("a")})
	tab.Append(relational.Tuple{relational.Null, relational.S("b")})
	tab.Append(relational.Tuple{relational.F(2.5), relational.S("3.5")})
	c := NewFeatureCache()
	xs := c.Numeric(tab, "x")
	if len(xs) != 2 || xs[0] != 1.5 || xs[1] != 2.5 {
		t.Errorf("Numeric = %v", xs)
	}
	// String columns with parseable values convert.
	ss := c.Numeric(tab, "s")
	if len(ss) != 1 || ss[0] != 3.5 {
		t.Errorf("Numeric over strings = %v", ss)
	}
	// Memoized: mutation invisible.
	tab.Append(relational.Tuple{relational.F(9), relational.S("x")})
	if got := c.Numeric(tab, "x"); len(got) != 2 {
		t.Error("cache recomputed numeric column")
	}
}

func TestFeatureCacheMaxValues(t *testing.T) {
	tab := relational.NewTable("t", relational.Attribute{Name: "a", Type: relational.Text})
	for i := 0; i < 100; i++ {
		tab.Append(relational.Tuple{relational.S("abcdefgh")})
	}
	c := NewFeatureCache()
	v := c.NGramVector(tab, "a", 10)
	var total float64
	for _, n := range v {
		total += n
	}
	// 10 values × 6 trigrams each.
	if total != 60 {
		t.Errorf("capped vector mass = %v, want 60", total)
	}
}

// TestCachedScoringMatchesUncached ensures memoization does not change
// results: two fresh caches and one shared cache agree.
func TestCachedScoringMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, tgt := fixture(rng, 100)
	book := tgt.Table("book")
	m := ValueNGramMatcher{W: 1}
	shared := NewFeatureCache()
	a := m.Score(shared, src, "name", book, "title")
	b := m.Score(shared, src, "name", book, "title")
	c := m.Score(NewFeatureCache(), src, "name", book, "title")
	if a != b || a != c {
		t.Errorf("cached scores diverge: %v %v %v", a, b, c)
	}
	n := NumericMatcher{W: 1}
	x := n.Score(shared, src, "price", book, "price")
	y := n.Score(NewFeatureCache(), src, "price", book, "price")
	if x != y {
		t.Errorf("numeric cached scores diverge: %v %v", x, y)
	}
}

func TestExplainBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src, tgt := fixture(rng, 120)
	b := NewEngine().Bind(src, tgt)
	exps := b.Explain(src, "code", "book", "isbn")
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	names := map[string]bool{}
	for _, e := range exps {
		names[e.Matcher] = true
		if e.Raw < 0 || e.Confidence < 0 || e.Confidence > 1 {
			t.Errorf("explanation out of range: %+v", e)
		}
	}
	if !names["value-ngram"] || !names["name"] || !names["type"] {
		t.Errorf("missing matcher explanations: %v", names)
	}
	if names["numeric"] {
		t.Error("numeric matcher should be inapplicable for string pair")
	}
	if b.Explain(src, "code", "zzz", "isbn") != nil {
		t.Error("unknown table should explain nothing")
	}
}
