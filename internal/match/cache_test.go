package match

import (
	"math/rand"
	"testing"

	"ctxmatch/internal/relational"
)

func TestFeatureCacheMemoizesNGram(t *testing.T) {
	tab := relational.NewTable("t", relational.Attribute{Name: "a", Type: relational.Text})
	tab.Append(relational.Tuple{relational.S("hello world")})
	c := NewFeatureCache()
	v1 := c.NGramVector(tab, "a", 0)
	// Mutate the table afterwards: the cache must return the memoized
	// vector, proving no recomputation happens.
	tab.Append(relational.Tuple{relational.S("more data")})
	v2 := c.NGramVector(tab, "a", 0)
	if v1 != v2 {
		t.Error("cache recomputed the vector")
	}
	// A different attribute or table is a different entry.
	other := relational.NewTable("u", relational.Attribute{Name: "a", Type: relational.Text})
	other.Append(relational.Tuple{relational.S("zzz")})
	if c.NGramVector(other, "a", 0) == v1 {
		t.Error("distinct tables share a cache entry")
	}
}

func TestFeatureCacheNumeric(t *testing.T) {
	tab := relational.NewTable("t",
		relational.Attribute{Name: "x", Type: relational.Real},
		relational.Attribute{Name: "s", Type: relational.Text},
	)
	tab.Append(relational.Tuple{relational.F(1.5), relational.S("a")})
	tab.Append(relational.Tuple{relational.Null, relational.S("b")})
	tab.Append(relational.Tuple{relational.F(2.5), relational.S("3.5")})
	c := NewFeatureCache()
	xs := c.Numeric(tab, "x")
	if len(xs) != 2 || xs[0] != 1.5 || xs[1] != 2.5 {
		t.Errorf("Numeric = %v", xs)
	}
	// String columns with parseable values convert.
	ss := c.Numeric(tab, "s")
	if len(ss) != 1 || ss[0] != 3.5 {
		t.Errorf("Numeric over strings = %v", ss)
	}
	// Memoized: mutation invisible.
	tab.Append(relational.Tuple{relational.F(9), relational.S("x")})
	if got := c.Numeric(tab, "x"); len(got) != 2 {
		t.Error("cache recomputed numeric column")
	}
}

func TestFeatureCacheMaxValues(t *testing.T) {
	tab := relational.NewTable("t", relational.Attribute{Name: "a", Type: relational.Text})
	for i := 0; i < 100; i++ {
		tab.Append(relational.Tuple{relational.S("abcdefgh")})
	}
	c := NewFeatureCache()
	v := c.NGramVector(tab, "a", 10)
	// 10 values × 6 trigrams each.
	if total := v.Mass(); total != 60 {
		t.Errorf("capped vector mass = %v, want 60", total)
	}
}

// TestCachedScoringMatchesUncached ensures memoization does not change
// results: two fresh caches and one shared cache agree.
func TestCachedScoringMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, tgt := fixture(rng, 100)
	book := tgt.Table("book")
	m := ValueNGramMatcher{W: 1}
	shared := NewFeatureCache()
	a := m.Score(shared, src, "name", book, "title")
	b := m.Score(shared, src, "name", book, "title")
	c := m.Score(NewFeatureCache(), src, "name", book, "title")
	if a != b || a != c {
		t.Errorf("cached scores diverge: %v %v %v", a, b, c)
	}
	n := NumericMatcher{W: 1}
	x := n.Score(shared, src, "price", book, "price")
	y := n.Score(NewFeatureCache(), src, "price", book, "price")
	if x != y {
		t.Errorf("numeric cached scores diverge: %v %v", x, y)
	}
}

func TestExplainBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src, tgt := fixture(rng, 120)
	b := NewEngine().Bind(src, tgt)
	exps := b.Explain(src, "code", "book", "isbn")
	if len(exps) == 0 {
		t.Fatal("no explanations")
	}
	names := map[string]bool{}
	for _, e := range exps {
		names[e.Matcher] = true
		if e.Raw < 0 || e.Confidence < 0 || e.Confidence > 1 {
			t.Errorf("explanation out of range: %+v", e)
		}
	}
	if !names["value-ngram"] || !names["name"] || !names["type"] {
		t.Errorf("missing matcher explanations: %v", names)
	}
	if names["numeric"] {
		t.Error("numeric matcher should be inapplicable for string pair")
	}
	if b.Explain(src, "code", "zzz", "isbn") != nil {
		t.Error("unknown table should explain nothing")
	}
}

// TestBindParallelMatchesSequential: the column-parallel bind must
// produce exactly the sequential bind's normalization statistics and
// therefore exactly its standard matches, at any worker count.
func TestBindParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src, tgt := fixture(rng, 150)
	eng := NewEngine()
	tf := eng.PrecomputeTarget(tgt)
	seq := eng.BindWithFeatures(src, tgt, tf)
	defer seq.Release()
	want := seq.StandardMatches(0)
	for _, workers := range []int{2, 4, 8} {
		par := eng.BindParallel(src, tgt, tf, workers)
		got := par.StandardMatches(0)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: match %d diverged:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
		par.Release()
	}
}

// TestFeatureCachePoolReuse: a released cache serves a fresh bind
// correctly (no stale entries leak across acquire/release cycles).
func TestFeatureCachePoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src, tgt := fixture(rng, 80)
	eng := NewEngine()
	tf := eng.PrecomputeTarget(tgt)
	var first []Match
	for i := 0; i < 5; i++ {
		b := eng.BindWithFeatures(src, tgt, tf)
		got := b.StandardMatches(0)
		if i == 0 {
			first = got
		} else if len(got) != len(first) {
			t.Fatalf("iteration %d: %d matches, want %d", i, len(got), len(first))
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("iteration %d: match %d diverged after cache reuse", i, j)
				}
			}
		}
		b.Release()
	}
}
