// Package match implements the standard (non-contextual) schema matching
// system of §2.3 that contextual matching treats as a black box. A set of
// matchers computes raw similarity scores between attribute pairs; for
// each source attribute and matcher, the distribution of raw scores to
// all target attributes is treated as samples of a normal distribution,
// converting raw scores to confidences; per-matcher confidences are then
// combined by weight.
package match

import (
	"fmt"
	"math"
	"sort"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/stats"
	"ctxmatch/internal/tokenize"
)

// Match is the paper's match triple (RS.s, RT.t, c) plus the quality
// numbers the algorithms reason about. Cond == nil means the constant
// TRUE (a standard match). Source may be a base table or an inferred
// view.
type Match struct {
	Source     *relational.Table
	SourceAttr string
	Target     *relational.Table
	TargetAttr string
	Cond       relational.Condition

	Score      float64 // average raw matcher score s_i
	Confidence float64 // combined confidence f_i in [0,1]
}

// IsStandard reports whether the match is a standard match: TRUE
// condition on a base table (§2.1).
func (m Match) IsStandard() bool {
	if m.Source.IsView() {
		return false
	}
	if m.Cond == nil {
		return true
	}
	_, isTrue := m.Cond.(relational.True)
	return isTrue
}

// String renders the match for display, e.g.
// "inv.name → book.title [type = 1] (conf 0.93)".
func (m Match) String() string {
	s := fmt.Sprintf("%s.%s → %s.%s", m.Source.Root().Name, m.SourceAttr, m.Target.Name, m.TargetAttr)
	if !m.IsStandard() && m.Cond != nil {
		s += " [" + m.Cond.String() + "]"
	}
	return fmt.Sprintf("%s (conf %.3f)", s, m.Confidence)
}

// AttrMatcher scores the similarity of one source column against one
// target column on sample data. Scores are raw: they need not be
// comparable across matchers, only across target attributes for a fixed
// source attribute (the normalization step handles the rest).
type AttrMatcher interface {
	// Name identifies the matcher in diagnostics.
	Name() string
	// Weight is the matcher's share in confidence combination.
	Weight() float64
	// Applicable reports whether the matcher has anything meaningful to
	// say about the pair (e.g. the numeric matcher requires two
	// numeric-domain attributes). Inapplicable matchers are excluded
	// from scoring and normalization rather than contributing a
	// meaningless neutral score.
	Applicable(src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) bool
	// Score returns the raw similarity of src.srcAttr and tgt.tgtAttr.
	// Column-derived features are memoized in cache (never nil), which
	// makes standard matching linear rather than quadratic in column
	// scans: one source column is scored against every target attribute.
	Score(cache *FeatureCache, src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) float64
}

// FeatureCache memoizes per-column derived features (3-gram vectors,
// numeric slices) keyed by table identity and attribute. A Bound owns
// one for the lifetime of a matching run; it is not safe for concurrent
// use. An optional shared TargetFeatures layer — immutable, so safe to
// read from many caches at once — answers target-column lookups without
// rescanning the catalog.
type FeatureCache struct {
	ngrams  map[colKey]tokenize.Vector
	numbers map[colKey][]float64
	shared  *TargetFeatures
}

type colKey struct {
	t    *relational.Table
	attr string
}

// NewFeatureCache returns an empty cache.
func NewFeatureCache() *FeatureCache {
	return &FeatureCache{
		ngrams:  map[colKey]tokenize.Vector{},
		numbers: map[colKey][]float64{},
	}
}

// NGramVector returns the aggregate trigram frequency vector of the
// column, computing it at most once per (table, attribute). maxValues
// caps how many values are folded in (0 = all); the cap is part of the
// column's identity only on first use, matching ValueNGramMatcher's
// single configuration per engine.
func (c *FeatureCache) NGramVector(t *relational.Table, attr string, maxValues int) tokenize.Vector {
	key := colKey{t, attr}
	if c.shared != nil && maxValues == c.shared.maxValues {
		if v, ok := c.shared.ngrams[key]; ok {
			return v
		}
	}
	if v, ok := c.ngrams[key]; ok {
		return v
	}
	vec := tokenize.Vector{}
	n := 0
	for _, v := range t.Column(attr) {
		if v.IsNull() {
			continue
		}
		vec.Add(tokenize.Trigrams(v.Str()))
		n++
		if maxValues > 0 && n >= maxValues {
			break
		}
	}
	c.ngrams[key] = vec
	return vec
}

// Numeric returns the column's numeric values, computed at most once per
// (table, attribute).
func (c *FeatureCache) Numeric(t *relational.Table, attr string) []float64 {
	key := colKey{t, attr}
	if c.shared != nil {
		if v, ok := c.shared.numbers[key]; ok {
			return v
		}
	}
	if v, ok := c.numbers[key]; ok {
		return v
	}
	out := []float64{}
	for _, v := range t.Column(attr) {
		if x, ok := v.Float(); ok {
			out = append(out, x)
		}
	}
	c.numbers[key] = out
	return out
}

// Engine bundles a matcher set. The zero value is unusable; construct
// with NewEngine (default matcher suite) or assemble Matchers directly.
//
// An Engine is safe for concurrent Bind calls once assembled: Bind only
// reads the matcher set, matchers are stateless values, and every Bound
// owns a private FeatureCache. Mutating Matchers or EvidenceScale while
// Binds are in flight is the caller's race.
type Engine struct {
	Matchers []AttrMatcher
	// EvidenceScale gates relative confidence by absolute evidence: a
	// matcher's confidence is Φ(z) · (1 - exp(-raw/EvidenceScale)), so a
	// pair whose raw score is near zero cannot become confident merely
	// by being the best of a bad lot. Zero or negative disables the
	// gate, restoring the pure §2.3 normalization (exposed for the
	// ablation benchmarks).
	EvidenceScale float64
}

// NewEngine returns an engine with the default matcher suite: attribute
// name similarity, instance 3-gram similarity, numeric distribution
// similarity, and declared-type compatibility — the kinds of evidence
// enumerated in §1 and §2.3. Instance-based matchers carry most of the
// weight: contextual matching works by re-scoring instance evidence
// under candidate views, and schema-level scores are invariant under
// view restriction.
func NewEngine() *Engine {
	return &Engine{
		Matchers: []AttrMatcher{
			NameMatcher{W: 0.15},
			ValueNGramMatcher{W: 1.0},
			NumericMatcher{W: 1.0},
			TypeMatcher{W: 0.05},
		},
		EvidenceScale: 0.08,
	}
}

// Bound is an engine bound to one source table and a target schema, with
// the per-(source attribute, matcher) normalization statistics of §2.3
// precomputed over the base sample. ContextMatch keeps the Bound around
// so view re-scoring (ScoreMatch in Figure 5) reuses the base attribute's
// score distribution, as the strawman discussion prescribes.
type Bound struct {
	engine *Engine
	src    *relational.Table
	tgt    *relational.Schema
	cache  *FeatureCache

	targets []relational.AttrRef
	// norm[matcher][srcAttr] = (mean, std) of raw scores from srcAttr to
	// every target attribute.
	norm []map[string]normStat
}

type normStat struct{ mu, sigma float64 }

// Bind precomputes normalization statistics for matching src against all
// tables of tgt.
func (e *Engine) Bind(src *relational.Table, tgt *relational.Schema) *Bound {
	return e.BindWithFeatures(src, tgt, nil)
}

// BindWithFeatures is Bind with a precomputed target feature layer
// (see PrecomputeTarget); tf may be nil or built for a different schema,
// in which case its entries simply never hit. The normalization pass
// still scans the source column features, which a long-lived Matcher
// cannot reuse across different sources.
func (e *Engine) BindWithFeatures(src *relational.Table, tgt *relational.Schema, tf *TargetFeatures) *Bound {
	b := &Bound{engine: e, src: src, tgt: tgt, cache: NewFeatureCache()}
	b.cache.shared = tf
	for _, tt := range tgt.Tables {
		for _, a := range tt.Attrs {
			b.targets = append(b.targets, relational.AttrRef{Table: tt.Name, Attr: a.Name})
		}
	}
	b.norm = make([]map[string]normStat, len(e.Matchers))
	for mi, m := range e.Matchers {
		b.norm[mi] = make(map[string]normStat, len(src.Attrs))
		for _, sa := range src.Attrs {
			var acc stats.Moments
			// A zero pseudo-observation anchors the distribution at the
			// "unrelated column" score. With many target attributes it
			// is negligible; with very few it keeps the sample from
			// degenerating (two real scores pin the better one at z=+1
			// no matter how raw scores move under a view).
			acc.Add(0)
			for _, ref := range b.targets {
				tt := tgt.Table(ref.Table)
				if m.Applicable(src, sa.Name, tt, ref.Attr) {
					acc.Add(m.Score(b.cache, src, sa.Name, tt, ref.Attr))
				}
			}
			sigma := acc.Std()
			if sigma < minNormSigma {
				sigma = minNormSigma
			}
			b.norm[mi][sa.Name] = normStat{mu: acc.Mean(), sigma: sigma}
		}
	}
	return b
}

// minNormSigma floors the normalization deviation so that a source
// attribute whose scores are all nearly equal does not turn microscopic
// raw differences into extreme confidences.
const minNormSigma = 0.05

// Score evaluates the (possibly view-restricted) source column against a
// target column and returns the average raw score and combined
// confidence. srcView must be the bound source table or a view whose
// Root is the bound source table: the normalization statistics of the
// base attribute are reused either way.
func (b *Bound) Score(srcView *relational.Table, srcAttr string, tgtTable, tgtAttr string) (score, confidence float64) {
	tt := b.tgt.Table(tgtTable)
	if tt == nil || srcView.AttrIndex(srcAttr) < 0 || tt.AttrIndex(tgtAttr) < 0 {
		return 0, 0
	}
	var totalScore, totalConf, totalWeight float64
	applicable := 0
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		applicable++
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		w := m.Weight()
		totalScore += w * raw
		totalConf += w * conf
		totalWeight += w
	}
	if applicable == 0 || totalWeight == 0 {
		return 0, 0
	}
	// Both the average score and the confidence are weighted by matcher
	// weight, so the instance-based matchers dominate: a view that
	// doubles the instance evidence should register in the score even
	// though the schema-level matchers are invariant under views.
	return totalScore / totalWeight, totalConf / totalWeight
}

// StandardMatches runs the standard matcher (§2.3): it scores every
// (source attribute, target attribute) pair and returns those whose
// combined confidence is at least tau, sorted by descending confidence
// (ties broken deterministically).
func (b *Bound) StandardMatches(tau float64) []Match {
	var out []Match
	for _, sa := range b.src.Attrs {
		for _, ref := range b.targets {
			score, conf := b.Score(b.src, sa.Name, ref.Table, ref.Attr)
			if conf < tau {
				continue
			}
			out = append(out, Match{
				Source:     b.src,
				SourceAttr: sa.Name,
				Target:     b.tgt.Table(ref.Table),
				TargetAttr: ref.Attr,
				Cond:       relational.True{},
				Score:      score,
				Confidence: conf,
			})
		}
	}
	SortMatches(out)
	return out
}

// Source returns the bound source table.
func (b *Bound) Source() *relational.Table { return b.src }

// TargetSchema returns the bound target schema.
func (b *Bound) TargetSchema() *relational.Schema { return b.tgt }

// Explanation is one matcher's contribution to a pair's combined
// confidence, for diagnostics.
type Explanation struct {
	Matcher    string
	Weight     float64
	Raw        float64 // raw similarity score
	Confidence float64 // normalized (and evidence-gated) confidence
}

// Explain returns the per-matcher breakdown for one attribute pair.
// Inapplicable matchers are omitted.
func (b *Bound) Explain(srcView *relational.Table, srcAttr, tgtTable, tgtAttr string) []Explanation {
	tt := b.tgt.Table(tgtTable)
	if tt == nil {
		return nil
	}
	var out []Explanation
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		out = append(out, Explanation{
			Matcher:    m.Name(),
			Weight:     m.Weight(),
			Raw:        raw,
			Confidence: conf,
		})
	}
	return out
}

// SortMatches orders matches by descending confidence, breaking ties by
// source attribute, target table and target attribute so output is
// stable across runs.
func SortMatches(ms []Match) {
	sort.SliceStable(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.SourceAttr != b.SourceAttr {
			return a.SourceAttr < b.SourceAttr
		}
		if a.Target.Name != b.Target.Name {
			return a.Target.Name < b.Target.Name
		}
		return a.TargetAttr < b.TargetAttr
	})
}

// Engine returns the engine the Bound was created from.
func (b *Bound) Engine() *Engine { return b.engine }
