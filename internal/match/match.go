// Package match implements the standard (non-contextual) schema matching
// system of §2.3 that contextual matching treats as a black box. A set of
// matchers computes raw similarity scores between attribute pairs; for
// each source attribute and matcher, the distribution of raw scores to
// all target attributes is treated as samples of a normal distribution,
// converting raw scores to confidences; per-matcher confidences are then
// combined by weight.
package match

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/stats"
	"ctxmatch/internal/tokenize"
)

// Match is the paper's match triple (RS.s, RT.t, c) plus the quality
// numbers the algorithms reason about. Cond == nil means the constant
// TRUE (a standard match). Source may be a base table or an inferred
// view.
type Match struct {
	Source     *relational.Table
	SourceAttr string
	Target     *relational.Table
	TargetAttr string
	Cond       relational.Condition

	Score      float64 // average raw matcher score s_i
	Confidence float64 // combined confidence f_i in [0,1]
}

// IsStandard reports whether the match is a standard match: TRUE
// condition on a base table (§2.1).
func (m Match) IsStandard() bool {
	if m.Source.IsView() {
		return false
	}
	if m.Cond == nil {
		return true
	}
	_, isTrue := m.Cond.(relational.True)
	return isTrue
}

// String renders the match for display, e.g.
// "inv.name → book.title [type = 1] (conf 0.93)".
func (m Match) String() string {
	s := fmt.Sprintf("%s.%s → %s.%s", m.Source.Root().Name, m.SourceAttr, m.Target.Name, m.TargetAttr)
	if !m.IsStandard() && m.Cond != nil {
		s += " [" + m.Cond.String() + "]"
	}
	return fmt.Sprintf("%s (conf %.3f)", s, m.Confidence)
}

// AttrMatcher scores the similarity of one source column against one
// target column on sample data. Scores are raw: they need not be
// comparable across matchers, only across target attributes for a fixed
// source attribute (the normalization step handles the rest).
type AttrMatcher interface {
	// Name identifies the matcher in diagnostics.
	Name() string
	// Weight is the matcher's share in confidence combination.
	Weight() float64
	// Applicable reports whether the matcher has anything meaningful to
	// say about the pair (e.g. the numeric matcher requires two
	// numeric-domain attributes). Inapplicable matchers are excluded
	// from scoring and normalization rather than contributing a
	// meaningless neutral score.
	Applicable(src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) bool
	// Score returns the raw similarity of src.srcAttr and tgt.tgtAttr.
	// Column-derived features are memoized in cache (never nil), which
	// makes standard matching linear rather than quadratic in column
	// scans: one source column is scored against every target attribute.
	Score(cache *FeatureCache, src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) float64
}

// FeatureCache memoizes per-column derived features — interned-gram ID
// vectors, numeric slices, attribute-name gram vectors — keyed by table
// identity and attribute. A Bound owns one for the lifetime of a
// matching run; it is not safe for concurrent use. An optional shared
// TargetFeatures layer — immutable, so safe to read from many caches at
// once — answers target-column lookups without rescanning the catalog
// and supplies the frozen gram dictionary; grams outside the dictionary
// get per-column overflow IDs (see tokenize.VectorBuilder). Without a
// shared layer the cache interns into a private building dictionary.
//
// Caches are pooled: Bind acquires one and Bound.Release returns it, so
// the steady-state prepared hot path reuses the maps instead of
// reallocating them per request.
type FeatureCache struct {
	dict    *tokenize.Dict
	shared  *TargetFeatures
	builder *tokenize.VectorBuilder
	ngrams  map[colKey]*tokenize.IDVector
	numbers map[colKey][]float64
	names   map[string]*tokenize.IDVector
}

type colKey struct {
	t    *relational.Table
	attr string
}

// NewFeatureCache returns an empty cache with a private building
// dictionary.
func NewFeatureCache() *FeatureCache {
	c := &FeatureCache{
		builder: tokenize.NewVectorBuilder(),
		ngrams:  map[colKey]*tokenize.IDVector{},
		numbers: map[colKey][]float64{},
		names:   map[string]*tokenize.IDVector{},
	}
	c.dict = tokenize.NewDict()
	return c
}

// featureCachePool recycles caches between Bind calls; see Bound.Release.
var featureCachePool = sync.Pool{New: func() any { return NewFeatureCache() }}

// acquireFeatureCache returns a pooled cache wired to the shared feature
// layer (nil for a private cache with a fresh building dictionary).
func acquireFeatureCache(tf *TargetFeatures) *FeatureCache {
	c := featureCachePool.Get().(*FeatureCache)
	c.shared = tf
	if tf != nil {
		c.dict = tf.dict
	} else {
		c.dict = tokenize.NewDict()
	}
	return c
}

// release clears the cache and returns it to the pool. The maps keep
// their capacity, which is what makes the steady-state hot path cheap.
func (c *FeatureCache) release() {
	clear(c.ngrams)
	clear(c.numbers)
	clear(c.names)
	c.shared = nil
	c.dict = nil
	featureCachePool.Put(c)
}

// NGramVector returns the aggregate trigram ID vector of the column,
// computing it at most once per (table, attribute). maxValues caps how
// many values are folded in (0 = all); the cap is part of the column's
// identity only on first use, matching ValueNGramMatcher's single
// configuration per engine.
func (c *FeatureCache) NGramVector(t *relational.Table, attr string, maxValues int) *tokenize.IDVector {
	key := colKey{t, attr}
	if c.shared != nil && maxValues == c.shared.maxValues {
		if v, ok := c.shared.ngrams[key]; ok {
			return v
		}
	}
	if v, ok := c.ngrams[key]; ok {
		return v
	}
	vec := buildColumnVector(c.builder, c.dict, t, attr, maxValues)
	c.ngrams[key] = vec
	return vec
}

// Numeric returns the column's numeric values, computed at most once per
// (table, attribute).
func (c *FeatureCache) Numeric(t *relational.Table, attr string) []float64 {
	key := colKey{t, attr}
	if c.shared != nil {
		if v, ok := c.shared.numbers[key]; ok {
			return v
		}
	}
	if v, ok := c.numbers[key]; ok {
		return v
	}
	out := numericColumn(t, attr)
	c.numbers[key] = out
	return out
}

// NameVector returns the trigram ID vector of an attribute name,
// computed at most once per distinct name, so the name matcher stops
// re-tokenizing the same identifiers for every scored pair.
func (c *FeatureCache) NameVector(name string) *tokenize.IDVector {
	if c.shared != nil {
		if v, ok := c.shared.names[name]; ok {
			return v
		}
	}
	if v, ok := c.names[name]; ok {
		return v
	}
	c.builder.AddTrigrams(c.dict, name)
	v := c.builder.Build()
	c.names[name] = v
	return v
}

// Engine bundles a matcher set. The zero value is unusable; construct
// with NewEngine (default matcher suite) or assemble Matchers directly.
//
// An Engine is safe for concurrent Bind calls once assembled: Bind only
// reads the matcher set, matchers are stateless values, and every Bound
// owns a private FeatureCache. Mutating Matchers or EvidenceScale while
// Binds are in flight is the caller's race.
type Engine struct {
	Matchers []AttrMatcher
	// EvidenceScale gates relative confidence by absolute evidence: a
	// matcher's confidence is Φ(z) · (1 - exp(-raw/EvidenceScale)), so a
	// pair whose raw score is near zero cannot become confident merely
	// by being the best of a bad lot. Zero or negative disables the
	// gate, restoring the pure §2.3 normalization (exposed for the
	// ablation benchmarks).
	EvidenceScale float64
}

// NewEngine returns an engine with the default matcher suite: attribute
// name similarity, instance 3-gram similarity, numeric distribution
// similarity, and declared-type compatibility — the kinds of evidence
// enumerated in §1 and §2.3. Instance-based matchers carry most of the
// weight: contextual matching works by re-scoring instance evidence
// under candidate views, and schema-level scores are invariant under
// view restriction.
func NewEngine() *Engine {
	return &Engine{
		Matchers: []AttrMatcher{
			NameMatcher{W: 0.15},
			ValueNGramMatcher{W: 1.0},
			NumericMatcher{W: 1.0},
			TypeMatcher{W: 0.05},
		},
		EvidenceScale: 0.08,
	}
}

// Bound is an engine bound to one source table and a target schema, with
// the per-(source attribute, matcher) normalization statistics of §2.3
// precomputed over the base sample. ContextMatch keeps the Bound around
// so view re-scoring (ScoreMatch in Figure 5) reuses the base attribute's
// score distribution, as the strawman discussion prescribes.
type Bound struct {
	engine *Engine
	src    *relational.Table
	tgt    *relational.Schema
	cache  *FeatureCache

	targets []relational.AttrRef
	// norm[matcher][srcAttr] = (mean, std) of raw scores from srcAttr to
	// every target attribute.
	norm []map[string]normStat
}

type normStat struct{ mu, sigma float64 }

// Bind precomputes normalization statistics for matching src against all
// tables of tgt.
func (e *Engine) Bind(src *relational.Table, tgt *relational.Schema) *Bound {
	return e.BindWithFeatures(src, tgt, nil)
}

// BindWithFeatures is Bind with a precomputed target feature layer
// (see PrecomputeTarget); tf may be nil or built for a different schema,
// in which case its entries simply never hit. The normalization pass
// still scans the source column features, which a long-lived Matcher
// cannot reuse across different sources.
func (e *Engine) BindWithFeatures(src *relational.Table, tgt *relational.Schema, tf *TargetFeatures) *Bound {
	return e.BindParallel(src, tgt, tf, 1)
}

// BindParallel is BindWithFeatures with the source-side work — column
// feature extraction and per-(matcher, source attribute) normalization
// — fanned across up to workers goroutines. Output is bit-identical to
// the sequential bind at any worker count: each (matcher, attribute)
// accumulation runs entirely inside one task, in target order.
//
// The parallel path requires a feature layer covering tgt (so the
// normalization pass is read-only on the cache) and an engine whose
// matchers touch only domain-appropriate cache accessors, as the
// built-in suite does; otherwise workers degrade to 1.
func (e *Engine) BindParallel(src *relational.Table, tgt *relational.Schema, tf *TargetFeatures, workers int) *Bound {
	b := &Bound{engine: e, src: src, tgt: tgt, cache: acquireFeatureCache(tf)}
	for _, tt := range tgt.Tables {
		for _, a := range tt.Attrs {
			b.targets = append(b.targets, relational.AttrRef{Table: tt.Name, Attr: a.Name})
		}
	}
	if workers > len(src.Attrs) {
		workers = len(src.Attrs)
	}
	if workers > 1 && tf.covers(tgt, e.ngramMaxValues()) {
		b.prewarmParallel(workers)
		b.normalizeParallel(workers)
	} else {
		b.normalizeSequential()
	}
	return b
}

// normalizeSequential computes the §2.3 normalization statistics in
// schema order on the calling goroutine.
func (b *Bound) normalizeSequential() {
	b.norm = make([]map[string]normStat, len(b.engine.Matchers))
	for mi, m := range b.engine.Matchers {
		b.norm[mi] = make(map[string]normStat, len(b.src.Attrs))
		for _, sa := range b.src.Attrs {
			b.norm[mi][sa.Name] = b.normalizeOne(m, sa.Name, b.cache)
		}
	}
}

// normalizeOne accumulates one (matcher, source attribute) score
// distribution over every target attribute.
func (b *Bound) normalizeOne(m AttrMatcher, srcAttr string, cache *FeatureCache) normStat {
	var acc stats.Moments
	// A zero pseudo-observation anchors the distribution at the
	// "unrelated column" score. With many target attributes it
	// is negligible; with very few it keeps the sample from
	// degenerating (two real scores pin the better one at z=+1
	// no matter how raw scores move under a view).
	acc.Add(0)
	for _, ref := range b.targets {
		tt := b.tgt.Table(ref.Table)
		if m.Applicable(b.src, srcAttr, tt, ref.Attr) {
			acc.Add(m.Score(cache, b.src, srcAttr, tt, ref.Attr))
		}
	}
	sigma := acc.Std()
	if sigma < minNormSigma {
		sigma = minNormSigma
	}
	return normStat{mu: acc.Mean(), sigma: sigma}
}

// ForEachIndex fans fn over the indices [0, n) across up to workers
// goroutines and waits for all of them. Each index is handed to exactly
// one worker, so fn may write to the i-th slot of a shared results
// slice without synchronization; per-index slots plus an in-order merge
// after return is the deterministic fan-out shape the whole pipeline
// uses. workers ≤ 1 (or n ≤ 1) runs inline on the calling goroutine.
func ForEachIndex(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// prewarmParallel builds every source-column feature the normalization
// pass can touch — n-gram vectors for string columns, numeric slices
// for number columns, name vectors for all attributes — fanning columns
// across workers. Each task uses its own builder and writes into its
// own slot; the results merge into the cache maps on the calling
// goroutine, after which the cache is effectively read-only for the
// built-in matcher suite.
func (b *Bound) prewarmParallel(workers int) {
	type slot struct {
		vec  *tokenize.IDVector
		nums []float64
		name *tokenize.IDVector
	}
	attrs := b.src.Attrs
	slots := make([]slot, len(attrs))
	var builders sync.Pool
	builders.New = func() any { return tokenize.NewVectorBuilder() }
	ForEachIndex(len(attrs), workers, func(i int) {
		builder := builders.Get().(*tokenize.VectorBuilder)
		defer builders.Put(builder)
		a := attrs[i]
		switch a.Type.Domain() {
		case relational.DomainString:
			slots[i].vec = buildColumnVector(builder, b.cache.dict, b.src, a.Name, b.cache.shared.maxValues)
		case relational.DomainNumber:
			slots[i].nums = numericColumn(b.src, a.Name)
		}
		if _, ok := b.cache.shared.names[a.Name]; !ok {
			builder.AddTrigrams(b.cache.dict, a.Name)
			slots[i].name = builder.Build()
		}
	})
	for i, a := range attrs {
		if slots[i].vec != nil {
			b.cache.ngrams[colKey{b.src, a.Name}] = slots[i].vec
		}
		if slots[i].nums != nil {
			b.cache.numbers[colKey{b.src, a.Name}] = slots[i].nums
		}
		if slots[i].name != nil {
			b.cache.names[a.Name] = slots[i].name
		}
	}
}

// normalizeParallel fans the per-(matcher, source attribute)
// normalization accumulations across workers. The cache must already be
// warm (prewarmParallel) so every Score call is a read; results land in
// indexed slots and merge deterministically.
func (b *Bound) normalizeParallel(workers int) {
	matchers := b.engine.Matchers
	attrs := b.src.Attrs
	slots := make([]normStat, len(matchers)*len(attrs))
	ForEachIndex(len(slots), workers, func(i int) {
		mi, ai := i/len(attrs), i%len(attrs)
		slots[i] = b.normalizeOne(matchers[mi], attrs[ai].Name, b.cache)
	})
	b.norm = make([]map[string]normStat, len(matchers))
	for mi := range matchers {
		b.norm[mi] = make(map[string]normStat, len(attrs))
		for ai, sa := range attrs {
			b.norm[mi][sa.Name] = slots[mi*len(attrs)+ai]
		}
	}
}

// Clone returns a Bound sharing the receiver's engine, source, targets
// and normalization statistics but owning a fresh pooled FeatureCache,
// so concurrent candidate-view scoring can proceed with one clone per
// worker. Release each clone independently.
func (b *Bound) Clone() *Bound {
	return &Bound{
		engine:  b.engine,
		src:     b.src,
		tgt:     b.tgt,
		cache:   acquireFeatureCache(b.cache.shared),
		targets: b.targets,
		norm:    b.norm,
	}
}

// Release returns the Bound's FeatureCache to the pool. The Bound (and
// any feature vector obtained through its cache) must not be used
// afterwards. Release is not idempotent; call it exactly once, and only
// on Bounds whose scoring is complete.
func (b *Bound) Release() {
	if b.cache != nil {
		b.cache.release()
		b.cache = nil
	}
}

// minNormSigma floors the normalization deviation so that a source
// attribute whose scores are all nearly equal does not turn microscopic
// raw differences into extreme confidences.
const minNormSigma = 0.05

// Score evaluates the (possibly view-restricted) source column against a
// target column and returns the average raw score and combined
// confidence. srcView must be the bound source table or a view whose
// Root is the bound source table: the normalization statistics of the
// base attribute are reused either way.
func (b *Bound) Score(srcView *relational.Table, srcAttr string, tgtTable, tgtAttr string) (score, confidence float64) {
	tt := b.tgt.Table(tgtTable)
	if tt == nil || srcView.AttrIndex(srcAttr) < 0 || tt.AttrIndex(tgtAttr) < 0 {
		return 0, 0
	}
	var totalScore, totalConf, totalWeight float64
	applicable := 0
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		applicable++
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		w := m.Weight()
		totalScore += w * raw
		totalConf += w * conf
		totalWeight += w
	}
	if applicable == 0 || totalWeight == 0 {
		return 0, 0
	}
	// Both the average score and the confidence are weighted by matcher
	// weight, so the instance-based matchers dominate: a view that
	// doubles the instance evidence should register in the score even
	// though the schema-level matchers are invariant under views.
	return totalScore / totalWeight, totalConf / totalWeight
}

// StandardMatches runs the standard matcher (§2.3): it scores every
// (source attribute, target attribute) pair and returns those whose
// combined confidence is at least tau, sorted by descending confidence
// (ties broken deterministically).
func (b *Bound) StandardMatches(tau float64) []Match {
	var out []Match
	for _, sa := range b.src.Attrs {
		for _, ref := range b.targets {
			score, conf := b.Score(b.src, sa.Name, ref.Table, ref.Attr)
			if conf < tau {
				continue
			}
			out = append(out, Match{
				Source:     b.src,
				SourceAttr: sa.Name,
				Target:     b.tgt.Table(ref.Table),
				TargetAttr: ref.Attr,
				Cond:       relational.True{},
				Score:      score,
				Confidence: conf,
			})
		}
	}
	SortMatches(out)
	return out
}

// Source returns the bound source table.
func (b *Bound) Source() *relational.Table { return b.src }

// TargetSchema returns the bound target schema.
func (b *Bound) TargetSchema() *relational.Schema { return b.tgt }

// Explanation is one matcher's contribution to a pair's combined
// confidence, for diagnostics.
type Explanation struct {
	Matcher    string
	Weight     float64
	Raw        float64 // raw similarity score
	Confidence float64 // normalized (and evidence-gated) confidence
}

// Explain returns the per-matcher breakdown for one attribute pair.
// Inapplicable matchers are omitted.
func (b *Bound) Explain(srcView *relational.Table, srcAttr, tgtTable, tgtAttr string) []Explanation {
	tt := b.tgt.Table(tgtTable)
	if tt == nil {
		return nil
	}
	var out []Explanation
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		out = append(out, Explanation{
			Matcher:    m.Name(),
			Weight:     m.Weight(),
			Raw:        raw,
			Confidence: conf,
		})
	}
	return out
}

// SortMatches orders matches by descending confidence, breaking ties by
// source attribute, target table and target attribute so output is
// stable across runs.
func SortMatches(ms []Match) {
	slices.SortStableFunc(ms, func(a, b Match) int {
		if a.Confidence != b.Confidence {
			return cmp.Compare(b.Confidence, a.Confidence)
		}
		if c := strings.Compare(a.SourceAttr, b.SourceAttr); c != 0 {
			return c
		}
		if c := strings.Compare(a.Target.Name, b.Target.Name); c != 0 {
			return c
		}
		return strings.Compare(a.TargetAttr, b.TargetAttr)
	})
}

// Engine returns the engine the Bound was created from.
func (b *Bound) Engine() *Engine { return b.engine }
