// Package match implements the standard (non-contextual) schema matching
// system of §2.3 that contextual matching treats as a black box. A set of
// matchers computes raw similarity scores between attribute pairs; for
// each source attribute and matcher, the distribution of raw scores to
// all target attributes is treated as samples of a normal distribution,
// converting raw scores to confidences; per-matcher confidences are then
// combined by weight.
package match

import (
	"cmp"
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"
	"sync"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/stats"
	"ctxmatch/internal/tokenize"
)

// Match is the paper's match triple (RS.s, RT.t, c) plus the quality
// numbers the algorithms reason about. Cond == nil means the constant
// TRUE (a standard match). Source may be a base table or an inferred
// view.
type Match struct {
	Source     *relational.Table
	SourceAttr string
	Target     *relational.Table
	TargetAttr string
	Cond       relational.Condition

	Score      float64 // average raw matcher score s_i
	Confidence float64 // combined confidence f_i in [0,1]
}

// IsStandard reports whether the match is a standard match: TRUE
// condition on a base table (§2.1).
func (m Match) IsStandard() bool {
	if m.Source.IsView() {
		return false
	}
	if m.Cond == nil {
		return true
	}
	_, isTrue := m.Cond.(relational.True)
	return isTrue
}

// String renders the match for display, e.g.
// "inv.name → book.title [type = 1] (conf 0.93)".
func (m Match) String() string {
	s := fmt.Sprintf("%s.%s → %s.%s", m.Source.Root().Name, m.SourceAttr, m.Target.Name, m.TargetAttr)
	if !m.IsStandard() && m.Cond != nil {
		s += " [" + m.Cond.String() + "]"
	}
	return fmt.Sprintf("%s (conf %.3f)", s, m.Confidence)
}

// AttrMatcher scores the similarity of one source column against one
// target column on sample data. Scores are raw: they need not be
// comparable across matchers, only across target attributes for a fixed
// source attribute (the normalization step handles the rest).
type AttrMatcher interface {
	// Name identifies the matcher in diagnostics.
	Name() string
	// Weight is the matcher's share in confidence combination.
	Weight() float64
	// Applicable reports whether the matcher has anything meaningful to
	// say about the pair (e.g. the numeric matcher requires two
	// numeric-domain attributes). Inapplicable matchers are excluded
	// from scoring and normalization rather than contributing a
	// meaningless neutral score.
	Applicable(src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) bool
	// Score returns the raw similarity of src.srcAttr and tgt.tgtAttr.
	// Column-derived features are memoized in cache (never nil), which
	// makes standard matching linear rather than quadratic in column
	// scans: one source column is scored against every target attribute.
	Score(cache *FeatureCache, src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string) float64
}

// FeatureCache memoizes per-column derived features — interned-gram ID
// vectors, numeric slices, attribute-name gram vectors — keyed by table
// identity and attribute. A Bound owns one for the lifetime of a
// matching run; it is not safe for concurrent use. An optional shared
// TargetFeatures layer — immutable, so safe to read from many caches at
// once — answers target-column lookups without rescanning the catalog
// and supplies the frozen gram dictionary; grams outside the dictionary
// get per-column overflow IDs (see tokenize.VectorBuilder). Without a
// shared layer the cache interns into a private building dictionary.
//
// Caches are pooled: Bind acquires one and Bound.Release returns it, so
// the steady-state prepared hot path reuses the maps instead of
// reallocating them per request.
type FeatureCache struct {
	dict    *tokenize.Dict
	shared  *TargetFeatures
	builder *tokenize.VectorBuilder
	ngrams  map[colKey]*tokenize.IDVector
	numbers map[colKey][]float64
	names   map[string]*tokenize.IDVector
	// numRanges memoizes per-column numeric [min, max] so pairwise
	// matchers combine cached ranges instead of rescanning columns.
	numRanges map[colKey][2]float64
	// rows memoizes, per source column, the indexed batch scores
	// against every target column of the shared candidate index: one
	// inverted-index retrieval replaces one merge walk per target
	// column, and the normalization pass and StandardMatches read the
	// same row.
	rows map[colKey][]float64
	// segs memoizes, per base column, the per-row tokenization encoded
	// as dense slot indices, so every candidate view's column vector
	// accumulates as a pure array-increment pass instead of re-folding
	// and re-hashing the sample's strings once per view (see
	// vectorFromSegments). slotCounts/slotTouched are the reusable
	// accumulation scratch.
	segs        map[colKey]*colSegments
	slotCounts  []float64
	slotTouched []int32
	rowIdx      []int
	// hists memoizes normalized value histograms per (column, range,
	// bins): the bin weights are a pure function of those inputs, so
	// re-scoring the same numeric column pair — every candidate view
	// against the same target column, say — reuses the counts instead of
	// re-binning. noMemo marks the parallel normalization phase, during
	// which the cache must stay read-only: histograms are then computed
	// fresh and not stored.
	hists  map[histKey][]float64
	noMemo bool
}

type histKey struct {
	col    colKey
	lo, hi float64
	bins   int
}

// colSegments is the per-row tokenization of one base column compiled
// against the frozen shared dictionary: ids holds the column's
// distinct encoded gram IDs in ascending order (dictionary IDs first,
// then the column's out-of-vocabulary grams encoded from the
// dictionary's end in first-occurrence order), and rows holds each
// row's grams as indices into ids. A nil row marks a NULL value
// (which does not count toward the n-gram value cap); a non-nil empty
// row is a value with no grams.
type colSegments struct {
	ids      []uint32
	firstOOV int
	rows     [][]int32
}

type colKey struct {
	t    *relational.Table
	attr string
}

// NewFeatureCache returns an empty cache with a private building
// dictionary.
func NewFeatureCache() *FeatureCache {
	c := &FeatureCache{
		builder:   tokenize.NewVectorBuilder(),
		ngrams:    map[colKey]*tokenize.IDVector{},
		numbers:   map[colKey][]float64{},
		names:     map[string]*tokenize.IDVector{},
		numRanges: map[colKey][2]float64{},
		rows:      map[colKey][]float64{},
		segs:      map[colKey]*colSegments{},
		hists:     map[histKey][]float64{},
	}
	c.dict = tokenize.NewDict()
	return c
}

// featureCachePool recycles caches between Bind calls; see Bound.Release.
var featureCachePool = sync.Pool{New: func() any { return NewFeatureCache() }}

// acquireFeatureCache returns a pooled cache wired to the shared feature
// layer (nil for a private cache with a fresh building dictionary).
func acquireFeatureCache(tf *TargetFeatures) *FeatureCache {
	c := featureCachePool.Get().(*FeatureCache)
	c.shared = tf
	if tf != nil {
		c.dict = tf.dict
	} else {
		c.dict = tokenize.NewDict()
	}
	return c
}

// release clears the cache and returns it to the pool. The maps keep
// their capacity, which is what makes the steady-state hot path cheap.
func (c *FeatureCache) release() {
	clear(c.ngrams)
	clear(c.numbers)
	clear(c.names)
	clear(c.numRanges)
	clear(c.rows)
	clear(c.segs)
	clear(c.hists)
	c.noMemo = false
	c.shared = nil
	c.dict = nil
	featureCachePool.Put(c)
}

// NGramVector returns the aggregate trigram ID vector of the column,
// computing it at most once per (table, attribute). maxValues caps how
// many values are folded in (0 = all); the cap is part of the column's
// identity only on first use, matching ValueNGramMatcher's single
// configuration per engine.
func (c *FeatureCache) NGramVector(t *relational.Table, attr string, maxValues int) *tokenize.IDVector {
	key := colKey{t, attr}
	if c.shared != nil && maxValues == c.shared.maxValues {
		if v, ok := c.shared.ngrams[key]; ok {
			return v
		}
	}
	if v, ok := c.ngrams[key]; ok {
		return v
	}
	var vec *tokenize.IDVector
	switch {
	case c.shared != nil && c.shared.index != nil && c.dict.Frozen() &&
		t.IsView() && len(t.Projection) == 0 &&
		len(t.Rows) > 0 && len(t.SelectedRows) == len(t.Rows):
		// len(t.Rows) > 0 matters: a zero-row view has nil SelectedRows,
		// which vectorFromSegments would otherwise read as "all rows".
		vec = c.vectorFromSegments(t.Base, attr, maxValues, t.SelectedRows)
	case c.shared != nil && c.shared.index != nil && c.dict.Frozen() && !t.IsView():
		// Base columns also assemble from their own segments: the
		// column is tokenized once (segmentsFor) and both its aggregate
		// vector and every view over it become integer passes.
		vec = c.vectorFromSegments(t, attr, maxValues, nil)
	default:
		vec = buildColumnVector(c.builder, c.dict, t, attr, maxValues)
	}
	c.ngrams[key] = vec
	return vec
}

// emptySeg marks a non-NULL row that tokenizes to no grams, keeping it
// distinct from the nil segment of a NULL row (which does not count
// toward the n-gram value cap).
var emptySeg = []uint32{}

// segmentsFor returns (compiling on first use) the slot-encoded
// per-row segments of one base column; see colSegments.
func (c *FeatureCache) segmentsFor(t *relational.Table, attr string) *colSegments {
	key := colKey{t, attr}
	if s, ok := c.segs[key]; ok {
		return s
	}
	segs := compileSegments(c.dict, t, attr)
	c.segs[key] = segs
	return segs
}

// compileSegments tokenizes one column once and slot-encodes every
// row's grams; see colSegments. It only reads the (frozen) dictionary,
// so compilations for different columns may run concurrently.
func compileSegments(d *tokenize.Dict, t *relational.Table, attr string) *colSegments {
	segs := &colSegments{rows: make([][]int32, len(t.Rows))}
	i := t.AttrIndex(attr)
	if i >= 0 {
		oovBase := uint32(d.Len())
		oov := map[string]uint32{}
		raw := make([][]uint32, len(t.Rows))
		distinct := map[uint32]struct{}{}
		for ri, row := range t.Rows {
			v := row[i]
			if v.IsNull() {
				continue
			}
			seg := emptySeg
			for g := range tokenize.TrigramSeq(v.Str()) {
				id, ok := d.Lookup(g)
				if !ok {
					id, ok = oov[g]
					if !ok {
						id = oovBase + uint32(len(oov))
						oov[g] = id
					}
				}
				seg = append(seg, id)
				distinct[id] = struct{}{}
			}
			raw[ri] = seg
		}
		segs.ids = make([]uint32, 0, len(distinct))
		for id := range distinct {
			segs.ids = append(segs.ids, id)
		}
		slices.Sort(segs.ids)
		segs.firstOOV = len(segs.ids)
		slotOf := make(map[uint32]int32, len(segs.ids))
		for slot, id := range segs.ids {
			slotOf[id] = int32(slot)
			if id >= oovBase && slot < segs.firstOOV {
				segs.firstOOV = slot
			}
		}
		for ri, seg := range raw {
			if seg == nil {
				continue
			}
			out := make([]int32, len(seg))
			for k, id := range seg {
				out[k] = slotOf[id]
			}
			segs.rows[ri] = out
		}
	}
	return segs
}

// vectorFromSegments accumulates the trigram vector of a column from
// base's slot-encoded segments over the selected row indices (nil
// selects every row — the base column itself): a pure array-increment
// pass with no string folding or hashing, bit-identical to
// re-tokenizing the selection. Known-gram slots materialize in
// ascending ID order and out-of-vocabulary slots in the selection's
// first-touch order with IDs assigned from the frozen dictionary's end
// — exactly the IDs, sort order and norm summation order
// VectorBuilder.AddGram + Build would have produced.
func (c *FeatureCache) vectorFromSegments(base *relational.Table, attr string, maxValues int, selected []int) *tokenize.IDVector {
	segs := c.segmentsFor(base, attr)
	if cap(c.slotCounts) < len(segs.ids) {
		c.slotCounts = make([]float64, len(segs.ids))
	}
	if selected == nil {
		selected = c.allRows(len(segs.rows))
	}
	vec, touched := segs.vector(uint32(c.dict.Len()), selected, maxValues,
		c.slotCounts[:len(segs.ids)], c.slotTouched[:0])
	c.slotTouched = touched[:0] // keep the grown capacity
	return vec
}

// vector accumulates the selection's trigram vector from the segments
// using caller-supplied scratch (counts zeroed, len == len(segs.ids);
// touched empty). It returns the scratch touched slice (zeroed again)
// so callers can recycle its capacity.
func (segs *colSegments) vector(oovBase uint32, selected []int, maxValues int, counts []float64, touched []int32) (*tokenize.IDVector, []int32) {
	if len(segs.ids) == 0 {
		return tokenize.NewIDVector(nil, nil, 0), touched
	}
	n := 0
	for _, ri := range selected {
		row := segs.rows[ri]
		if row == nil {
			continue // NULL in the base row
		}
		for _, slot := range row {
			if counts[slot] == 0 {
				touched = append(touched, slot)
			}
			counts[slot]++
		}
		n++
		if maxValues > 0 && n >= maxValues {
			break
		}
	}
	if len(touched) == 0 {
		return tokenize.NewIDVector(nil, nil, 0), touched
	}
	ids := make([]uint32, 0, len(touched))
	cs := make([]float64, 0, len(touched))
	var norm2 float64
	// Known grams: ascending slot order is ascending ID order.
	for slot := 0; slot < segs.firstOOV; slot++ {
		if counts[slot] == 0 {
			continue
		}
		ids = append(ids, segs.ids[slot])
		cs = append(cs, counts[slot])
		norm2 += counts[slot] * counts[slot]
	}
	// OOV grams: IDs assigned from the dictionary's end in the
	// selection's first-touch order, which is also their ascending
	// final-ID order.
	nOOV := uint32(0)
	for _, slot := range touched {
		if int(slot) < segs.firstOOV {
			continue
		}
		ids = append(ids, oovBase+nOOV)
		nOOV++
		cs = append(cs, counts[slot])
		norm2 += counts[slot] * counts[slot]
	}
	for _, slot := range touched {
		counts[slot] = 0
	}
	return tokenize.NewIDVector(ids, cs, math.Sqrt(norm2)), touched
}

// Numeric returns the column's numeric values, computed at most once per
// (table, attribute).
func (c *FeatureCache) Numeric(t *relational.Table, attr string) []float64 {
	key := colKey{t, attr}
	if c.shared != nil {
		if v, ok := c.shared.numbers[key]; ok {
			return v
		}
	}
	if v, ok := c.numbers[key]; ok {
		return v
	}
	out := numericColumn(t, attr)
	c.numbers[key] = out
	return out
}

// NumericRange returns the [min, max] of the column's numeric values
// (+Inf, -Inf when empty). Min over cached per-column minima equals min
// over the concatenated scan bit-for-bit, so matchers can combine two
// columns' cached ranges instead of rescanning both columns per pair —
// the scan that made numeric scoring quadratic in catalog width. The
// per-column statistics are part of the candidate-generation subsystem:
// an Exhaustive engine's shared layer carries none, and its runs
// rescan per call, measuring the baseline §2.3 loop faithfully.
func (c *FeatureCache) NumericRange(t *relational.Table, attr string) (lo, hi float64) {
	key := colKey{t, attr}
	if c.shared != nil {
		if r, ok := c.shared.numRanges[key]; ok {
			return r[0], r[1]
		}
		if c.shared.index == nil {
			r := numericRange(c.Numeric(t, attr))
			return r[0], r[1]
		}
	}
	if r, ok := c.numRanges[key]; ok {
		return r[0], r[1]
	}
	r := numericRange(c.Numeric(t, attr))
	c.numRanges[key] = r
	return r[0], r[1]
}

// Histogram returns the column's bins-bin normalized value histogram
// over [lo, hi) (last bin closed), memoized per (column, range, bins).
// hi must be strictly greater than lo. The bin expression matches the
// inline loop NumericMatcher historically used bit-for-bit, so memoized
// reuse cannot move a score.
func (c *FeatureCache) Histogram(t *relational.Table, attr string, lo, hi float64, bins int) []float64 {
	key := histKey{colKey{t, attr}, lo, hi, bins}
	if h, ok := c.hists[key]; ok {
		return h
	}
	vals := c.Numeric(t, attr)
	h := make([]float64, bins)
	for _, v := range vals {
		i := int(float64(bins) * (v - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		h[i] += 1 / float64(len(vals))
	}
	if !c.noMemo {
		c.hists[key] = h
	}
	return h
}

// NameVector returns the trigram ID vector of an attribute name,
// computed at most once per distinct name, so the name matcher stops
// re-tokenizing the same identifiers for every scored pair.
func (c *FeatureCache) NameVector(name string) *tokenize.IDVector {
	if c.shared != nil {
		if v, ok := c.shared.names[name]; ok {
			return v
		}
	}
	if v, ok := c.names[name]; ok {
		return v
	}
	c.builder.AddTrigrams(c.dict, name)
	v := c.builder.Build()
	c.names[name] = v
	return v
}

// NGramCosine returns the cosine similarity of the two columns'
// aggregate trigram vectors. When the shared layer's candidate index
// covers the target column, the source column is batch-scored against
// every indexed column in one inverted-index retrieval (memoized in
// rows, so the normalization pass pays it once and every later pair
// lookup — including every rescoring of the same column — is O(1));
// otherwise it falls back to the pairwise merge walk. Both paths
// produce bit-identical values — the index accumulates each column's
// dot product in the merge walk's own summation order, and columns
// sharing no gram score exactly 0 either way.
func (c *FeatureCache) NGramCosine(src *relational.Table, srcAttr string, tgt *relational.Table, tgtAttr string, maxValues int) float64 {
	if c.shared != nil && c.shared.index != nil && maxValues == c.shared.maxValues {
		if ci, ok := c.shared.colDense[colKey{tgt, tgtAttr}]; ok {
			return c.scoreRow(src, srcAttr, maxValues)[ci]
		}
	}
	return tokenize.CosineIDs(
		c.NGramVector(src, srcAttr, maxValues),
		c.NGramVector(tgt, tgtAttr, maxValues),
	)
}

// scoreRow returns the memoized indexed scores of one source column
// against every column of the shared candidate index. No single-entry
// shortcut state here: the parallel normalization pass calls this
// concurrently on a prewarmed (and therefore read-only) rows map, so
// scoreRow must not write anything when it hits.
func (c *FeatureCache) scoreRow(src *relational.Table, srcAttr string, maxValues int) []float64 {
	key := colKey{src, srcAttr}
	if row, ok := c.rows[key]; ok {
		return row
	}
	row := make([]float64, c.shared.index.Columns())
	c.shared.index.ScoreColumnsFresh(c.NGramVector(src, srcAttr, maxValues), row)
	c.rows[key] = row
	return row
}

// allRows returns the identity row selection [0, n), reusing (and
// growing) a cached slice.
func (c *FeatureCache) allRows(n int) []int {
	if cap(c.rowIdx) < n {
		c.rowIdx = make([]int, n)
		for i := range c.rowIdx {
			c.rowIdx[i] = i
		}
	}
	return c.rowIdx[:n]
}

// Engine bundles a matcher set. The zero value is unusable; construct
// with NewEngine (default matcher suite) or assemble Matchers directly.
//
// An Engine is safe for concurrent Bind calls once assembled: Bind only
// reads the matcher set, matchers are stateless values, and every Bound
// owns a private FeatureCache. Mutating Matchers or EvidenceScale while
// Binds are in flight is the caller's race.
type Engine struct {
	Matchers []AttrMatcher
	// EvidenceScale gates relative confidence by absolute evidence: a
	// matcher's confidence is Φ(z) · (1 - exp(-raw/EvidenceScale)), so a
	// pair whose raw score is near zero cannot become confident merely
	// by being the best of a bad lot. Zero or negative disables the
	// gate, restoring the pure §2.3 normalization (exposed for the
	// ablation benchmarks).
	EvidenceScale float64
	// Exhaustive disables the inverted gram-ID candidate index:
	// PrecomputeTarget skips building it and every pair falls back to
	// the per-pair merge-walk cosine. Scores are bit-identical either
	// way; the flag exists so benchmarks and property tests can pit the
	// indexed path against the exhaustive one.
	Exhaustive bool
}

// NewEngine returns an engine with the default matcher suite: attribute
// name similarity, instance 3-gram similarity, numeric distribution
// similarity, and declared-type compatibility — the kinds of evidence
// enumerated in §1 and §2.3. Instance-based matchers carry most of the
// weight: contextual matching works by re-scoring instance evidence
// under candidate views, and schema-level scores are invariant under
// view restriction.
func NewEngine() *Engine {
	return &Engine{
		Matchers: []AttrMatcher{
			NameMatcher{W: 0.15},
			ValueNGramMatcher{W: 1.0},
			NumericMatcher{W: 1.0},
			TypeMatcher{W: 0.05},
		},
		EvidenceScale: 0.08,
	}
}

// Bound is an engine bound to one source table and a target schema, with
// the per-(source attribute, matcher) normalization statistics of §2.3
// precomputed over the base sample. ContextMatch keeps the Bound around
// so view re-scoring (ScoreMatch in Figure 5) reuses the base attribute's
// score distribution, as the strawman discussion prescribes.
type Bound struct {
	engine *Engine
	src    *relational.Table
	tgt    *relational.Schema
	cache  *FeatureCache

	targets []relational.AttrRef
	// norm[matcher][srcAttr] = (mean, std) of raw scores from srcAttr to
	// every target attribute.
	norm []map[string]normStat
}

type normStat struct{ mu, sigma float64 }

// Bind precomputes normalization statistics for matching src against all
// tables of tgt.
func (e *Engine) Bind(src *relational.Table, tgt *relational.Schema) *Bound {
	return e.BindWithFeatures(src, tgt, nil)
}

// BindWithFeatures is Bind with a precomputed target feature layer
// (see PrecomputeTarget); tf may be nil or built for a different schema,
// in which case its entries simply never hit. The normalization pass
// still scans the source column features, which a long-lived Matcher
// cannot reuse across different sources.
func (e *Engine) BindWithFeatures(src *relational.Table, tgt *relational.Schema, tf *TargetFeatures) *Bound {
	return e.BindParallel(src, tgt, tf, 1)
}

// BindParallel is BindWithFeatures with the source-side work — column
// feature extraction and per-(matcher, source attribute) normalization
// — fanned across up to workers goroutines. Output is bit-identical to
// the sequential bind at any worker count: each (matcher, attribute)
// accumulation runs entirely inside one task, in target order.
//
// The parallel path requires a feature layer covering tgt (so the
// normalization pass is read-only on the cache) and an engine whose
// matchers touch only domain-appropriate cache accessors, as the
// built-in suite does; otherwise workers degrade to 1.
func (e *Engine) BindParallel(src *relational.Table, tgt *relational.Schema, tf *TargetFeatures, workers int) *Bound {
	b := &Bound{engine: e, src: src, tgt: tgt, cache: acquireFeatureCache(tf)}
	for _, tt := range tgt.Tables {
		for _, a := range tt.Attrs {
			b.targets = append(b.targets, relational.AttrRef{Table: tt.Name, Attr: a.Name})
		}
	}
	if workers > len(src.Attrs) {
		workers = len(src.Attrs)
	}
	if workers > 1 && tf.covers(tgt, e.ngramMaxValues()) {
		b.prewarmParallel(workers)
		b.cache.noMemo = true
		b.normalizeParallel(workers)
		b.cache.noMemo = false
	} else {
		b.normalizeSequential()
	}
	return b
}

// normalizeSequential computes the §2.3 normalization statistics in
// schema order on the calling goroutine.
func (b *Bound) normalizeSequential() {
	b.norm = make([]map[string]normStat, len(b.engine.Matchers))
	for mi, m := range b.engine.Matchers {
		b.norm[mi] = make(map[string]normStat, len(b.src.Attrs))
		for _, sa := range b.src.Attrs {
			b.norm[mi][sa.Name] = b.normalizeOne(m, sa.Name, b.cache)
		}
	}
}

// normalizeOne accumulates one (matcher, source attribute) score
// distribution over every target attribute.
func (b *Bound) normalizeOne(m AttrMatcher, srcAttr string, cache *FeatureCache) normStat {
	var acc stats.Moments
	// A zero pseudo-observation anchors the distribution at the
	// "unrelated column" score. With many target attributes it
	// is negligible; with very few it keeps the sample from
	// degenerating (two real scores pin the better one at z=+1
	// no matter how raw scores move under a view).
	acc.Add(0)
	for _, ref := range b.targets {
		tt := b.tgt.Table(ref.Table)
		if m.Applicable(b.src, srcAttr, tt, ref.Attr) {
			acc.Add(m.Score(cache, b.src, srcAttr, tt, ref.Attr))
		}
	}
	sigma := acc.Std()
	if sigma < minNormSigma {
		sigma = minNormSigma
	}
	return normStat{mu: acc.Mean(), sigma: sigma}
}

// ForEachIndex fans fn over the indices [0, n) across up to workers
// goroutines and waits for all of them. Each index is handed to exactly
// one worker, so fn may write to the i-th slot of a shared results
// slice without synchronization; per-index slots plus an in-order merge
// after return is the deterministic fan-out shape the whole pipeline
// uses. workers ≤ 1 (or n ≤ 1) runs inline on the calling goroutine.
func ForEachIndex(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// prewarmParallel builds every source-column feature the normalization
// pass can touch — n-gram vectors for string columns, numeric slices
// for number columns, name vectors for all attributes — fanning columns
// across workers. Each task uses its own builder and writes into its
// own slot; the results merge into the cache maps on the calling
// goroutine, after which the cache is effectively read-only for the
// built-in matcher suite.
func (b *Bound) prewarmParallel(workers int) {
	type slot struct {
		vec    *tokenize.IDVector
		segs   *colSegments
		row    []float64
		nums   []float64
		numsOK bool
		rng    [2]float64
		name   *tokenize.IDVector
	}
	attrs := b.src.Attrs
	slots := make([]slot, len(attrs))
	var builders sync.Pool
	builders.New = func() any { return tokenize.NewVectorBuilder() }
	ix := b.cache.shared.index
	dictLen := uint32(b.cache.dict.Len())
	allRows := b.cache.allRows(len(b.src.Rows))
	ForEachIndex(len(attrs), workers, func(i int) {
		builder := builders.Get().(*tokenize.VectorBuilder)
		defer builders.Put(builder)
		a := attrs[i]
		switch a.Type.Domain() {
		case relational.DomainString:
			if ix != nil {
				// Compile the column's per-row segments once (worker-local
				// scratch) and derive the vector and the indexed score
				// row from them, so the normalization pass — and every
				// candidate view over this column — stays read-only on
				// the cache.
				slots[i].segs = compileSegments(b.cache.dict, b.src, a.Name)
				slots[i].vec, _ = slots[i].segs.vector(dictLen, allRows,
					b.cache.shared.maxValues,
					make([]float64, len(slots[i].segs.ids)), nil)
				slots[i].row = make([]float64, ix.Columns())
				ix.ScoreColumns(slots[i].vec, slots[i].row)
			} else {
				slots[i].vec = buildColumnVector(builder, b.cache.dict, b.src, a.Name, b.cache.shared.maxValues)
			}
		case relational.DomainNumber:
			slots[i].nums = numericColumn(b.src, a.Name)
			slots[i].numsOK = true
			if ix != nil {
				// Range statistics ride with the candidate subsystem;
				// the Exhaustive baseline rescans per pair and would
				// never read this.
				slots[i].rng = numericRange(slots[i].nums)
			}
		}
		if _, ok := b.cache.shared.names[a.Name]; !ok {
			builder.AddTrigrams(b.cache.dict, a.Name)
			slots[i].name = builder.Build()
		}
	})
	for i, a := range attrs {
		if slots[i].vec != nil {
			b.cache.ngrams[colKey{b.src, a.Name}] = slots[i].vec
		}
		if slots[i].segs != nil {
			b.cache.segs[colKey{b.src, a.Name}] = slots[i].segs
		}
		if slots[i].row != nil {
			b.cache.rows[colKey{b.src, a.Name}] = slots[i].row
		}
		if slots[i].numsOK {
			b.cache.numbers[colKey{b.src, a.Name}] = slots[i].nums
			if ix != nil {
				b.cache.numRanges[colKey{b.src, a.Name}] = slots[i].rng
			}
		}
		if slots[i].name != nil {
			b.cache.names[a.Name] = slots[i].name
		}
	}
}

// normalizeParallel fans the per-(matcher, source attribute)
// normalization accumulations across workers. The cache must already be
// warm (prewarmParallel) so every Score call is a read; results land in
// indexed slots and merge deterministically.
func (b *Bound) normalizeParallel(workers int) {
	matchers := b.engine.Matchers
	attrs := b.src.Attrs
	slots := make([]normStat, len(matchers)*len(attrs))
	ForEachIndex(len(slots), workers, func(i int) {
		mi, ai := i/len(attrs), i%len(attrs)
		slots[i] = b.normalizeOne(matchers[mi], attrs[ai].Name, b.cache)
	})
	b.norm = make([]map[string]normStat, len(matchers))
	for mi := range matchers {
		b.norm[mi] = make(map[string]normStat, len(attrs))
		for ai, sa := range attrs {
			b.norm[mi][sa.Name] = slots[mi*len(attrs)+ai]
		}
	}
}

// Clone returns a Bound sharing the receiver's engine, source, targets
// and normalization statistics but owning a fresh pooled FeatureCache,
// so concurrent candidate-view scoring can proceed with one clone per
// worker. The clone's cache starts seeded with the parent's per-column
// artifacts — vectors, numeric features, score rows, compiled segments
// — all immutable once built, so clones never re-tokenize the columns
// the parent already compiled. The parent's cache must be past its
// write phase (Bind has returned) when Clone is called, which is when
// candidate scoring clones. Release each clone independently.
func (b *Bound) Clone() *Bound {
	c := acquireFeatureCache(b.cache.shared)
	maps.Copy(c.ngrams, b.cache.ngrams)
	maps.Copy(c.numbers, b.cache.numbers)
	maps.Copy(c.names, b.cache.names)
	maps.Copy(c.numRanges, b.cache.numRanges)
	maps.Copy(c.rows, b.cache.rows)
	maps.Copy(c.segs, b.cache.segs)
	maps.Copy(c.hists, b.cache.hists)
	return &Bound{
		engine:  b.engine,
		src:     b.src,
		tgt:     b.tgt,
		cache:   c,
		targets: b.targets,
		norm:    b.norm,
	}
}

// Release returns the Bound's FeatureCache to the pool. The Bound (and
// any feature vector obtained through its cache) must not be used
// afterwards. Release is not idempotent; call it exactly once, and only
// on Bounds whose scoring is complete.
func (b *Bound) Release() {
	if b.cache != nil {
		b.cache.release()
		b.cache = nil
	}
}

// minNormSigma floors the normalization deviation so that a source
// attribute whose scores are all nearly equal does not turn microscopic
// raw differences into extreme confidences.
const minNormSigma = 0.05

// Score evaluates the (possibly view-restricted) source column against a
// target column and returns the average raw score and combined
// confidence. srcView must be the bound source table or a view whose
// Root is the bound source table: the normalization statistics of the
// base attribute are reused either way.
func (b *Bound) Score(srcView *relational.Table, srcAttr string, tgtTable, tgtAttr string) (score, confidence float64) {
	tt := b.tgt.Table(tgtTable)
	if tt == nil || srcView.AttrIndex(srcAttr) < 0 || tt.AttrIndex(tgtAttr) < 0 {
		return 0, 0
	}
	var totalScore, totalConf, totalWeight float64
	applicable := 0
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		applicable++
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		w := m.Weight()
		totalScore += w * raw
		totalConf += w * conf
		totalWeight += w
	}
	if applicable == 0 || totalWeight == 0 {
		return 0, 0
	}
	// Both the average score and the confidence are weighted by matcher
	// weight, so the instance-based matchers dominate: a view that
	// doubles the instance evidence should register in the score even
	// though the schema-level matchers are invariant under views.
	return totalScore / totalWeight, totalConf / totalWeight
}

// ResolvedPair is one (source attribute, target attribute) pair with
// every view-invariant lookup of Score hoisted out: the target table
// resolution, the per-matcher applicability (a function of declared
// attribute types only, which select-only views share with their base
// table), and the normalization statistics. Rescoring the same pair
// under many candidate views — the inner loop of contextual matching —
// then skips all of the repeated string-keyed traffic. Build with
// Bound.Resolve; the value is immutable and shareable across the
// Bound's clones, whose engine and statistics it snapshots.
type ResolvedPair struct {
	srcAttr, tgtAttr string
	tt               *relational.Table
	appl             uint64 // bit mi set: matcher mi applicable
	konst            uint64 // bit mi set: ms[mi].raw/conf precomputed
	ms               []resolvedMatcher
	ok               bool
}

// resolvedMatcher is one matcher's pair-constant state: its
// normalization statistics, and — for view-invariant matchers — its
// precomputed raw score and confidence.
type resolvedMatcher struct {
	ns        normStat
	raw, conf float64
}

// viewInvariantMatcher is an optional AttrMatcher extension: a matcher
// returning true scores purely on declared metadata (attribute names,
// types), so its raw score for a pair is the same under the base table
// and every select-only view of it, and Resolve computes it once.
type viewInvariantMatcher interface {
	ViewInvariant() bool
}

// Resolve precomputes the ResolvedPair for one attribute pair. An
// unknown table or attribute yields a pair that scores (0, 0), exactly
// like Score's own validation.
func (b *Bound) Resolve(srcAttr, tgtTable, tgtAttr string) ResolvedPair {
	tt := b.tgt.Table(tgtTable)
	if tt == nil || b.src.AttrIndex(srcAttr) < 0 || tt.AttrIndex(tgtAttr) < 0 {
		return ResolvedPair{}
	}
	rp := ResolvedPair{
		srcAttr: srcAttr,
		tgtAttr: tgtAttr,
		tt:      tt,
		ms:      make([]resolvedMatcher, len(b.engine.Matchers)),
		ok:      true,
	}
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(b.src, srcAttr, tt, tgtAttr) {
			continue
		}
		rp.appl |= 1 << uint(mi)
		ns := b.norm[mi][srcAttr]
		rp.ms[mi].ns = ns
		if vi, okVI := m.(viewInvariantMatcher); okVI && vi.ViewInvariant() {
			raw := m.Score(b.cache, b.src, srcAttr, tt, tgtAttr)
			rp.ms[mi].raw = raw
			rp.ms[mi].conf = b.confidence(raw, ns)
			rp.konst |= 1 << uint(mi)
		}
	}
	return rp
}

// confidence maps one matcher's raw score through its normalization
// statistics (and the optional evidence discount) — the shared tail of
// Score and ScoreResolved.
func (b *Bound) confidence(raw float64, ns normStat) float64 {
	conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
	if b.engine.EvidenceScale > 0 {
		conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
	}
	return conf
}

// ScoreResolved is Score over a precomputed ResolvedPair: bit-identical
// output, minus the per-call table/statistics lookups, applicability
// re-checks, and re-scoring of view-invariant matchers. The
// accumulation visits matchers in the same order with the same values,
// so the floating-point result cannot diverge from Score's. srcView
// must obey Score's contract (the bound source table or a select-only
// view over it — which is also what makes the resolved applicability
// and the precomputed metadata scores valid for it).
func (b *Bound) ScoreResolved(srcView *relational.Table, rp *ResolvedPair) (score, confidence float64) {
	if !rp.ok {
		return 0, 0
	}
	var totalScore, totalConf, totalWeight float64
	applicable := 0
	for mi, m := range b.engine.Matchers {
		bit := uint64(1) << uint(mi)
		if rp.appl&bit == 0 {
			continue
		}
		applicable++
		var raw, conf float64
		if rp.konst&bit != 0 {
			raw, conf = rp.ms[mi].raw, rp.ms[mi].conf
		} else {
			raw = m.Score(b.cache, srcView, rp.srcAttr, rp.tt, rp.tgtAttr)
			conf = b.confidence(raw, rp.ms[mi].ns)
		}
		w := m.Weight()
		totalScore += w * raw
		totalConf += w * conf
		totalWeight += w
	}
	if applicable == 0 || totalWeight == 0 {
		return 0, 0
	}
	return totalScore / totalWeight, totalConf / totalWeight
}

// StandardMatches runs the standard matcher (§2.3): it scores every
// (source attribute, target attribute) pair and returns those whose
// combined confidence is at least tau, sorted by descending confidence
// (ties broken deterministically).
func (b *Bound) StandardMatches(tau float64) []Match {
	var out []Match
	for _, sa := range b.src.Attrs {
		for _, ref := range b.targets {
			score, conf := b.Score(b.src, sa.Name, ref.Table, ref.Attr)
			if conf < tau {
				continue
			}
			out = append(out, Match{
				Source:     b.src,
				SourceAttr: sa.Name,
				Target:     b.tgt.Table(ref.Table),
				TargetAttr: ref.Attr,
				Cond:       relational.True{},
				Score:      score,
				Confidence: conf,
			})
		}
	}
	SortMatches(out)
	return out
}

// Source returns the bound source table.
func (b *Bound) Source() *relational.Table { return b.src }

// TargetSchema returns the bound target schema.
func (b *Bound) TargetSchema() *relational.Schema { return b.tgt }

// Explanation is one matcher's contribution to a pair's combined
// confidence, for diagnostics.
type Explanation struct {
	Matcher    string
	Weight     float64
	Raw        float64 // raw similarity score
	Confidence float64 // normalized (and evidence-gated) confidence
}

// Explain returns the per-matcher breakdown for one attribute pair.
// Inapplicable matchers are omitted.
func (b *Bound) Explain(srcView *relational.Table, srcAttr, tgtTable, tgtAttr string) []Explanation {
	tt := b.tgt.Table(tgtTable)
	if tt == nil {
		return nil
	}
	var out []Explanation
	for mi, m := range b.engine.Matchers {
		if !m.Applicable(srcView, srcAttr, tt, tgtAttr) {
			continue
		}
		raw := m.Score(b.cache, srcView, srcAttr, tt, tgtAttr)
		ns := b.norm[mi][srcAttr]
		conf := stats.NormalCDF(raw, ns.mu, ns.sigma)
		if b.engine.EvidenceScale > 0 {
			conf *= 1 - math.Exp(-raw/b.engine.EvidenceScale)
		}
		out = append(out, Explanation{
			Matcher:    m.Name(),
			Weight:     m.Weight(),
			Raw:        raw,
			Confidence: conf,
		})
	}
	return out
}

// SortMatches orders matches by descending confidence, breaking ties by
// source attribute, target table and target attribute so output is
// stable across runs.
func SortMatches(ms []Match) {
	slices.SortStableFunc(ms, func(a, b Match) int {
		if a.Confidence != b.Confidence {
			return cmp.Compare(b.Confidence, a.Confidence)
		}
		if c := strings.Compare(a.SourceAttr, b.SourceAttr); c != 0 {
			return c
		}
		if c := strings.Compare(a.Target.Name, b.Target.Name); c != 0 {
			return c
		}
		return strings.Compare(a.TargetAttr, b.TargetAttr)
	})
}

// Engine returns the engine the Bound was created from.
func (b *Bound) Engine() *Engine { return b.engine }
