package match

import (
	"sync"
	"sync/atomic"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// targetUpdates counts UpdateTargetFeatures invocations process-wide, so
// tests can assert that a delta rebuild went through the splice path
// (and that it performed no full precompute: TargetPrecomputes stays
// flat across an update).
var targetUpdates atomic.Int64

// TargetUpdates returns how many times a target feature layer has been
// delta-rebuilt in this process.
func TargetUpdates() int64 { return targetUpdates.Load() }

// CanUpdate reports whether the layer retains the per-column gram merge
// order a delta rebuild replays. Layers built by PrecomputeTarget do;
// layers restored from snapshots do not (the snapshot format carries
// vectors, not merge provenance) and must be re-prepared from scratch.
func (tf *TargetFeatures) CanUpdate() bool {
	return tf != nil && tf.colOrder != nil
}

// UpdateTargetFeatures derives the feature layer of an updated schema
// from an existing layer, rescanning only the columns of tables for
// which touched reports true. Untouched columns never rescan rows:
// their gram vectors are replayed into the fresh dictionary d through
// the recorded per-column merge order, so the dictionary's ID
// assignment — and therefore every vector, name vector and the rebuilt
// candidate index — is bit-identical to what PrecomputeTargetParallel
// would produce from scratch over updated. Touched columns fan across
// up to workers goroutines exactly like a fresh build.
//
// The engine must be the one old was built under (the n-gram value cap
// and Exhaustive flag are part of a layer's identity), old must satisfy
// CanUpdate, and untouched tables in updated must be the same *Table
// pointers old was built over.
func (e *Engine) UpdateTargetFeatures(old *TargetFeatures, updated *relational.Schema, d *tokenize.Dict, touched func(*relational.Table) bool, workers int) *TargetFeatures {
	targetUpdates.Add(1)
	tf := &TargetFeatures{
		tgt:       updated,
		maxValues: e.ngramMaxValues(),
		dict:      d,
		ngrams:    map[colKey]*tokenize.IDVector{},
		numbers:   map[colKey][]float64{},
		numRanges: map[colKey][2]float64{},
		names:     map[string]*tokenize.IDVector{},
		colOrder:  map[colKey][]uint32{},
	}
	if updated == nil {
		return tf
	}
	type job struct {
		t      *relational.Table
		attr   string
		domain relational.Domain
		fresh  bool
	}
	var jobs []job
	for _, tt := range updated.Tables {
		fresh := touched(tt)
		for _, a := range tt.Attrs {
			if dom := a.Type.Domain(); dom == relational.DomainString || dom == relational.DomainNumber {
				jobs = append(jobs, job{tt, a.Name, dom, fresh})
			}
		}
	}
	type slot struct {
		local *tokenize.Dict
		vec   *tokenize.IDVector
		nums  []float64
	}
	slots := make([]slot, len(jobs))
	var builders sync.Pool
	builders.New = func() any { return tokenize.NewVectorBuilder() }
	ForEachIndex(len(jobs), workers, func(i int) {
		j := jobs[i]
		if !j.fresh {
			return
		}
		b := builders.Get().(*tokenize.VectorBuilder)
		defer builders.Put(b)
		switch j.domain {
		case relational.DomainString:
			ld := tokenize.NewDict()
			slots[i] = slot{local: ld, vec: buildColumnVector(b, ld, j.t, j.attr, tf.maxValues)}
		case relational.DomainNumber:
			slots[i] = slot{nums: numericColumn(j.t, j.attr)}
		}
	})
	// remapOld lazily translates old shared IDs to fresh ones as the
	// replay walks each untouched column's recorded merge order; entries
	// never reached stay NoID and are never consulted, because a
	// column's vector references exactly the grams its order lists.
	remapOld := make([]uint32, old.dict.Len())
	for i := range remapOld {
		remapOld[i] = tokenize.NoID
	}
	for i, j := range jobs {
		key := colKey{j.t, j.attr}
		switch j.domain {
		case relational.DomainString:
			if j.fresh {
				remap := slots[i].local.MergeInto(d)
				tf.ngrams[key] = tokenize.Remapped(slots[i].vec, remap)
				tf.colOrder[key] = remap
			} else {
				order := old.colOrder[key]
				norder := make([]uint32, len(order))
				for oi, oldID := range order {
					nid := remapOld[oldID]
					if nid == tokenize.NoID {
						nid = d.Intern(old.dict.Gram(oldID))
						remapOld[oldID] = nid
					}
					norder[oi] = nid
				}
				tf.ngrams[key] = tokenize.Remapped(old.ngrams[key], remapOld)
				tf.colOrder[key] = norder
			}
			tf.strCols = append(tf.strCols, key)
		case relational.DomainNumber:
			if j.fresh {
				tf.numbers[key] = slots[i].nums
				if !e.Exhaustive {
					tf.numRanges[key] = numericRange(slots[i].nums)
				}
			} else {
				tf.numbers[key] = old.numbers[key]
				if !e.Exhaustive {
					tf.numRanges[key] = old.numRanges[key]
				}
			}
		}
	}
	// Name vectors intern after every column — the same canonical point
	// a fresh build interns them at — and the candidate index rebuilds
	// over the final vectors. Both are cheap relative to column scans
	// (names are short strings; the index is a counting sort over
	// postings already in memory).
	b := tokenize.NewVectorBuilder()
	for _, tt := range updated.Tables {
		for _, a := range tt.Attrs {
			if _, ok := tf.names[a.Name]; !ok {
				b.AddTrigrams(d, a.Name)
				tf.names[a.Name] = b.Build()
			}
		}
	}
	if !e.Exhaustive && len(tf.strCols) > 0 {
		cols := make([]*tokenize.IDVector, len(tf.strCols))
		tf.colDense = make(map[colKey]int, len(tf.strCols))
		for i, key := range tf.strCols {
			cols[i] = tf.ngrams[key]
			tf.colDense[key] = i
		}
		tf.index = tokenize.BuildIndex(cols, d.Len())
	}
	return tf
}
