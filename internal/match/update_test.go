package match

import (
	"reflect"
	"testing"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// updateFixture builds a three-table schema mixing string and numeric
// columns, plus an updated variant of it: the first table replaced with
// a row-changed copy, the last dropped, and a new table appended.
func updateFixture() (base, updated *relational.Schema, touched func(*relational.Table) bool) {
	books := relational.NewTable("books",
		relational.Attribute{Name: "title", Type: relational.Text},
		relational.Attribute{Name: "price", Type: relational.Real},
	)
	for _, r := range []struct {
		t string
		p float64
	}{{"heart of darkness", 12}, {"leaves of grass", 9}, {"a secret history", 14}} {
		books.Append(relational.Tuple{relational.S(r.t), relational.F(r.p)})
	}
	music := relational.NewTable("music",
		relational.Attribute{Name: "album", Type: relational.Text},
		relational.Attribute{Name: "price", Type: relational.Real},
	)
	music.Append(relational.Tuple{relational.S("abbey road"), relational.F(10)})
	music.Append(relational.Tuple{relational.S("hotel california"), relational.F(11)})
	extra := relational.NewTable("extra",
		relational.Attribute{Name: "note", Type: relational.Text},
	)
	extra.Append(relational.Tuple{relational.S("winter garden letters")})
	base = relational.NewSchema("base", books, music, extra)

	booksV2 := relational.NewTable("books",
		relational.Attribute{Name: "title", Type: relational.Text},
		relational.Attribute{Name: "price", Type: relational.Real},
	)
	booksV2.Append(relational.Tuple{relational.S("heart of darkness"), relational.Null})
	booksV2.Append(relational.Tuple{relational.S("river of shadow"), relational.F(17)})
	added := relational.NewTable("added",
		relational.Attribute{Name: "name", Type: relational.Text},
		relational.Attribute{Name: "qty", Type: relational.Int},
	)
	added.Append(relational.Tuple{relational.S("velvet stone"), relational.F(3)})
	// music carries over by pointer — the contract UpdateTargetFeatures
	// replays untouched columns under.
	updated = relational.NewSchema("base", booksV2, music, added)
	fresh := map[*relational.Table]bool{booksV2: true, added: true}
	return base, updated, func(t *relational.Table) bool { return fresh[t] }
}

// TestUpdateTargetFeaturesMatchesFreshBuild: the delta path must
// reproduce, field for field, the layer a from-scratch parallel build
// produces over the updated schema — gram vectors, merge orders,
// numeric columns, name vectors, and the rebuilt candidate index — for
// both the indexed and the exhaustive engine, at 1 and 4 workers.
func TestUpdateTargetFeaturesMatchesFreshBuild(t *testing.T) {
	for _, exhaustive := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			e := NewEngine()
			e.Exhaustive = exhaustive
			base, updated, touched := updateFixture()
			old := e.PrecomputeTargetParallel(base, tokenize.NewDict(), workers)
			if !old.CanUpdate() {
				t.Fatal("fresh build lost its merge provenance")
			}

			before := TargetUpdates()
			got := e.UpdateTargetFeatures(old, updated, tokenize.NewDict(), touched, workers)
			if TargetUpdates() != before+1 {
				t.Error("TargetUpdates did not advance")
			}
			want := e.PrecomputeTargetParallel(updated, tokenize.NewDict(), workers)

			if !reflect.DeepEqual(got.ngrams, want.ngrams) {
				t.Errorf("exhaustive=%v workers=%d: ngrams diverge", exhaustive, workers)
			}
			if !reflect.DeepEqual(got.colOrder, want.colOrder) {
				t.Errorf("exhaustive=%v workers=%d: colOrder diverges", exhaustive, workers)
			}
			if !reflect.DeepEqual(got.numbers, want.numbers) {
				t.Errorf("exhaustive=%v workers=%d: numbers diverge", exhaustive, workers)
			}
			if !reflect.DeepEqual(got.numRanges, want.numRanges) {
				t.Errorf("exhaustive=%v workers=%d: numRanges diverge", exhaustive, workers)
			}
			if !reflect.DeepEqual(got.names, want.names) {
				t.Errorf("exhaustive=%v workers=%d: name vectors diverge", exhaustive, workers)
			}
			if !reflect.DeepEqual(got.strCols, want.strCols) {
				t.Errorf("exhaustive=%v workers=%d: string column order diverges", exhaustive, workers)
			}
			if got.dict.Len() != want.dict.Len() {
				t.Errorf("exhaustive=%v workers=%d: dict sized %d, fresh %d",
					exhaustive, workers, got.dict.Len(), want.dict.Len())
			}
			for id := 0; id < got.dict.Len(); id++ {
				if got.dict.Gram(uint32(id)) != want.dict.Gram(uint32(id)) {
					t.Fatalf("exhaustive=%v workers=%d: dict diverges at id %d: %q vs %q",
						exhaustive, workers, id, got.dict.Gram(uint32(id)), want.dict.Gram(uint32(id)))
				}
			}
			if exhaustive {
				if got.index != nil {
					t.Error("exhaustive layer built a candidate index")
				}
			} else {
				if got.index == nil {
					t.Fatal("indexed layer missing its candidate index")
				}
				if !reflect.DeepEqual(got.colDense, want.colDense) {
					t.Errorf("workers=%d: dense column mapping diverges", workers)
				}
			}
			if got.Target() != updated {
				t.Error("layer not bound to the updated schema")
			}
		}
	}
}

// TestCanUpdate: nil layers and layers without merge provenance (the
// snapshot-restore shape) must refuse the delta path.
func TestCanUpdate(t *testing.T) {
	var nilTF *TargetFeatures
	if nilTF.CanUpdate() {
		t.Error("nil layer claims updatability")
	}
	if (&TargetFeatures{}).CanUpdate() {
		t.Error("layer without colOrder claims updatability")
	}
	e := NewEngine()
	base, _, _ := updateFixture()
	if !e.PrecomputeTargetParallel(base, tokenize.NewDict(), 2).CanUpdate() {
		t.Error("fresh parallel build not updatable")
	}
}

// TestUpdateTargetFeaturesNilSchema: a nil updated schema yields an
// empty layer rather than a panic.
func TestUpdateTargetFeaturesNilSchema(t *testing.T) {
	e := NewEngine()
	base, _, _ := updateFixture()
	old := e.PrecomputeTargetParallel(base, tokenize.NewDict(), 1)
	tf := e.UpdateTargetFeatures(old, nil, tokenize.NewDict(), func(*relational.Table) bool { return false }, 1)
	if tf.Columns() != 0 {
		t.Errorf("nil schema produced %d columns", tf.Columns())
	}
}
