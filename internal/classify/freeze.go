package classify

import (
	"math"
	"sync"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// FrozenClassifier is the immutable, compiled form of a trained
// Classifier: label set pinned and sorted, per-label parameters laid out
// in contiguous slices, and (for the Naive Bayes form) gram likelihoods
// indexed by interned gram ID. A frozen classifier predicts the same
// label as its live counterpart on every value — bit-for-bit, because
// freezing precomputes exactly the terms the live classifier computes,
// and accumulates them in the same order — while classifying with zero
// map lookups and zero allocations. Frozen classifiers are safe for
// concurrent use.
type FrozenClassifier interface {
	// Classify predicts a label for v; ok is false if the classifier
	// froze with no training data (mirroring Classifier.Classify).
	Classify(v relational.Value) (label string, ok bool)
	// ClassifyIndex is Classify returning the dense index of the label
	// in Labels() instead of the string, for ID-keyed consumers. The
	// index is -1 when ok is false.
	ClassifyIndex(v relational.Value) (idx int, ok bool)
	// Labels returns the label set, sorted, aligned with ClassifyIndex.
	Labels() []string
}

// Freeze compiles a trained classifier into its immutable frozen form.
// NaiveBayes vocab grams are interned into dict (which must still be
// building); Gaussian and Majority ignore the dictionary. The live
// classifier remains usable — Freeze only reads it.
func Freeze(c Classifier, dict *tokenize.Dict) FrozenClassifier {
	switch c := c.(type) {
	case *NaiveBayes:
		return c.Freeze(dict)
	case *Gaussian:
		return c.Freeze()
	case *Majority:
		return c.Freeze()
	default:
		panic("classify: Freeze of unknown classifier type")
	}
}

// FrozenNaiveBayes is the compiled form of NaiveBayes: per-label log
// priors plus a flat [gramID·L + label] log-likelihood table over the
// dictionary's gram range, with a single out-of-vocabulary bucket for
// grams the dictionary has never seen. Classify walks the value's gram
// IDs once, accumulating all label scores per gram from one contiguous
// table row.
type FrozenNaiveBayes struct {
	dict     *tokenize.Dict
	labels   []string
	logPrior []float64
	// lik[int(gid)*len(labels)+li] = log((count(gram,label)+1)/total(label)),
	// defined for every gid < tableGrams.
	lik []float64
	// oov[li] = log(1/total(label)): the likelihood of any gram outside
	// the table — identical to the smoothed likelihood of a known gram
	// the label never saw, so routing through the bucket is exact.
	oov        []float64
	tableGrams int
	trained    bool
	scratch    sync.Pool
}

// Freeze compiles the classifier, interning its vocabulary into dict.
func (nb *NaiveBayes) Freeze(dict *tokenize.Dict) *FrozenNaiveBayes {
	f := &FrozenNaiveBayes{dict: dict, labels: nb.Labels(), trained: nb.examples > 0}
	for gram := range nb.vocab {
		dict.Intern(gram)
	}
	L := len(f.labels)
	f.logPrior = make([]float64, L)
	f.oov = make([]float64, L)
	f.tableGrams = dict.Len()
	f.lik = make([]float64, f.tableGrams*L)
	vocab := float64(len(nb.vocab)) + 1
	totals := make([]float64, L)
	for li, label := range f.labels {
		// Precisely the terms NaiveBayes.Classify computes per label.
		f.logPrior[li] = math.Log(nb.labelCounts[label] / nb.examples)
		totals[li] = nb.gramTotals[label] + vocab
		f.oov[li] = math.Log(1 / totals[li])
	}
	// A gram a label never saw scores log((0+1)/total) — bit-for-bit the
	// label's OOV term — so the table is sparse in disguise: default-fill
	// every row with oov, then overwrite only the (gram, label) pairs the
	// label counted. This pays Σ|per-label vocab| Log calls instead of
	// tableGrams·L, which is what keeps freezing off the catalog-update
	// critical path.
	for gid := 0; gid < f.tableGrams; gid++ {
		copy(f.lik[gid*L:(gid+1)*L], f.oov)
	}
	for li, label := range f.labels {
		total := totals[li]
		for gram, c := range nb.grams[label] {
			f.lik[int(dict.Intern(gram))*L+li] = math.Log((c + 1) / total)
		}
	}
	f.scratch.New = func() any {
		s := make([]float64, L)
		return &s
	}
	return f
}

// Labels implements FrozenClassifier.
func (f *FrozenNaiveBayes) Labels() []string { return f.labels }

// Classify implements FrozenClassifier.
func (f *FrozenNaiveBayes) Classify(v relational.Value) (string, bool) {
	idx, ok := f.ClassifyIndex(v)
	if !ok {
		return "", false
	}
	return f.labels[idx], true
}

// ClassifyIndex implements FrozenClassifier: argmax over labels of
// logPrior + Σ lik[gram], walking the value's interned gram IDs once
// and each gram's contiguous table row once. Scores accumulate per
// label in the same order as the live classifier (prior first, then
// grams in value order), so results agree bit-for-bit.
func (f *FrozenNaiveBayes) ClassifyIndex(v relational.Value) (int, bool) {
	if !f.trained {
		return -1, false
	}
	L := len(f.labels)
	sp := f.scratch.Get().(*[]float64)
	scores := *sp
	copy(scores, f.logPrior)
	for gid := range f.dict.TrigramIDs(v.Str()) {
		if gid != tokenize.NoID && int(gid) < f.tableGrams {
			row := f.lik[int(gid)*L : int(gid)*L+L]
			for i := range scores {
				scores[i] += row[i]
			}
		} else {
			for i, o := range f.oov {
				scores[i] += o
			}
		}
	}
	best, bestScore := -1, math.Inf(-1)
	for i, s := range scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	f.scratch.Put(sp)
	return best, true
}

// FrozenGaussian is the compiled form of Gaussian: per-label
// (log prior − log normalizer), mean, and floored 2·variance laid out
// in contiguous slices, with the majority-label fallback precomputed.
type FrozenGaussian struct {
	labels []string
	// base[li] = log(n_l/N) − 0.5·log(2π·var_l), the value-independent
	// part of the live score, precomputed with the same operations.
	base        []float64
	mean        []float64
	twoVar      []float64 // 2·variance after the live variance floor
	majorityIdx int
	trained     bool
}

// Freeze compiles the classifier.
func (g *Gaussian) Freeze() *FrozenGaussian {
	f := &FrozenGaussian{labels: g.Labels(), trained: g.global.n > 0, majorityIdx: -1}
	L := len(f.labels)
	f.base = make([]float64, L)
	f.mean = make([]float64, L)
	f.twoVar = make([]float64, L)
	_, globalVar := g.global.meanVar()
	floor := globalVar * 1e-4
	if floor == 0 {
		floor = 1e-9
	}
	bestN := -1.0
	for li, label := range f.labels {
		acc := g.sums[label]
		mean, variance := acc.meanVar()
		if variance < floor {
			variance = floor
		}
		f.base[li] = math.Log(acc.n/g.global.n) - 0.5*math.Log(2*math.Pi*variance)
		f.mean[li] = mean
		f.twoVar[li] = 2 * variance
		if acc.n > bestN {
			f.majorityIdx, bestN = li, acc.n
		}
	}
	return f
}

// Labels implements FrozenClassifier.
func (f *FrozenGaussian) Labels() []string { return f.labels }

// Classify implements FrozenClassifier.
func (f *FrozenGaussian) Classify(v relational.Value) (string, bool) {
	idx, ok := f.ClassifyIndex(v)
	if !ok {
		return "", false
	}
	return f.labels[idx], true
}

// ClassifyIndex implements FrozenClassifier: the live classifier's
// prior-weighted log density, with the value-independent terms taken
// from the compiled table. Unparseable input falls back to the majority
// label, as in the live classifier.
func (f *FrozenGaussian) ClassifyIndex(v relational.Value) (int, bool) {
	if !f.trained {
		return -1, false
	}
	x, ok := v.Float()
	if !ok {
		return f.majorityIdx, true
	}
	best, bestScore := -1, math.Inf(-1)
	for i, b := range f.base {
		d := x - f.mean[i]
		score := b - d*d/f.twoVar[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, true
}

// FrozenMajority is the compiled form of Majority: the single majority
// label, pinned.
type FrozenMajority struct {
	labels  []string
	bestIdx int
	trained bool
}

// Freeze compiles the baseline classifier.
func (m *Majority) Freeze() *FrozenMajority {
	f := &FrozenMajority{labels: m.Labels(), bestIdx: -1, trained: m.total > 0}
	if f.trained {
		best := m.Best()
		for i, l := range f.labels {
			if l == best {
				f.bestIdx = i
				break
			}
		}
	}
	return f
}

// Labels implements FrozenClassifier.
func (f *FrozenMajority) Labels() []string { return f.labels }

// Classify implements FrozenClassifier.
func (f *FrozenMajority) Classify(relational.Value) (string, bool) {
	if !f.trained {
		return "", false
	}
	return f.labels[f.bestIdx], true
}

// ClassifyIndex implements FrozenClassifier.
func (f *FrozenMajority) ClassifyIndex(relational.Value) (int, bool) {
	if !f.trained {
		return -1, false
	}
	return f.bestIdx, true
}
