package classify

import (
	"fmt"

	"ctxmatch/internal/tokenize"
)

// RawNaiveBayes is the flat, serializable form of FrozenNaiveBayes: the
// compiled tables exactly as the hot path reads them, so a snapshot
// loader can alias LogPrior/Lik/OOV straight out of a contiguous
// buffer.
type RawNaiveBayes struct {
	Labels   []string
	LogPrior []float64
	// Lik is the flat [gramID·len(Labels) + labelIdx] log-likelihood
	// table covering gram IDs below TableGrams.
	Lik []float64
	// OOV is the per-label likelihood of any gram outside the table.
	OOV        []float64
	TableGrams int
	Trained    bool
}

// Raw exports the compiled tables.
func (f *FrozenNaiveBayes) Raw() *RawNaiveBayes {
	return &RawNaiveBayes{
		Labels:     f.labels,
		LogPrior:   f.logPrior,
		Lik:        f.lik,
		OOV:        f.oov,
		TableGrams: f.tableGrams,
		Trained:    f.trained,
	}
}

// RestoreNaiveBayes reconstructs a FrozenNaiveBayes over dict from its
// flat form, validating every table dimension the classify hot path
// indexes by so corrupted input cannot read out of range. dict must be
// the frozen dictionary the tables were compiled against — gram IDs
// below TableGrams address Lik rows directly.
func RestoreNaiveBayes(dict *tokenize.Dict, raw *RawNaiveBayes) (*FrozenNaiveBayes, error) {
	L := len(raw.Labels)
	if raw.Trained && L == 0 {
		return nil, fmt.Errorf("classify: trained naive bayes with no labels")
	}
	if len(raw.LogPrior) != L || len(raw.OOV) != L {
		return nil, fmt.Errorf("classify: naive bayes has %d labels but %d priors and %d oov entries", L, len(raw.LogPrior), len(raw.OOV))
	}
	if raw.TableGrams < 0 || raw.TableGrams > dict.Len() {
		return nil, fmt.Errorf("classify: naive bayes table covers %d grams, dictionary has %d", raw.TableGrams, dict.Len())
	}
	if int64(len(raw.Lik)) != int64(raw.TableGrams)*int64(L) {
		return nil, fmt.Errorf("classify: naive bayes likelihood table has %d entries, want %d×%d", len(raw.Lik), raw.TableGrams, L)
	}
	f := &FrozenNaiveBayes{
		dict:       dict,
		labels:     raw.Labels,
		logPrior:   raw.LogPrior,
		lik:        raw.Lik,
		oov:        raw.OOV,
		tableGrams: raw.TableGrams,
		trained:    raw.Trained,
	}
	f.scratch.New = func() any {
		s := make([]float64, L)
		return &s
	}
	return f, nil
}

// RawGaussian is the flat, serializable form of FrozenGaussian.
type RawGaussian struct {
	Labels      []string
	Base        []float64
	Mean        []float64
	TwoVar      []float64
	MajorityIdx int
	Trained     bool
}

// Raw exports the compiled tables.
func (f *FrozenGaussian) Raw() *RawGaussian {
	return &RawGaussian{
		Labels:      f.labels,
		Base:        f.base,
		Mean:        f.mean,
		TwoVar:      f.twoVar,
		MajorityIdx: f.majorityIdx,
		Trained:     f.trained,
	}
}

// RestoreGaussian reconstructs a FrozenGaussian from its flat form,
// validating the per-label slice dimensions and the majority-label
// fallback index the classify hot path relies on.
func RestoreGaussian(raw *RawGaussian) (*FrozenGaussian, error) {
	L := len(raw.Labels)
	if len(raw.Base) != L || len(raw.Mean) != L || len(raw.TwoVar) != L {
		return nil, fmt.Errorf("classify: gaussian has %d labels but %d/%d/%d parameter entries", L, len(raw.Base), len(raw.Mean), len(raw.TwoVar))
	}
	if raw.Trained && (raw.MajorityIdx < 0 || raw.MajorityIdx >= L) {
		return nil, fmt.Errorf("classify: trained gaussian majority index %d outside %d labels", raw.MajorityIdx, L)
	}
	return &FrozenGaussian{
		labels:      raw.Labels,
		base:        raw.Base,
		mean:        raw.Mean,
		twoVar:      raw.TwoVar,
		majorityIdx: raw.MajorityIdx,
		trained:     raw.Trained,
	}, nil
}

// RawMajority is the flat, serializable form of FrozenMajority.
type RawMajority struct {
	Labels  []string
	BestIdx int
	Trained bool
}

// Raw exports the compiled form.
func (f *FrozenMajority) Raw() *RawMajority {
	return &RawMajority{Labels: f.labels, BestIdx: f.bestIdx, Trained: f.trained}
}

// RestoreMajority reconstructs a FrozenMajority from its flat form,
// validating the pinned label index.
func RestoreMajority(raw *RawMajority) (*FrozenMajority, error) {
	if raw.Trained && (raw.BestIdx < 0 || raw.BestIdx >= len(raw.Labels)) {
		return nil, fmt.Errorf("classify: trained majority index %d outside %d labels", raw.BestIdx, len(raw.Labels))
	}
	return &FrozenMajority{labels: raw.Labels, bestIdx: raw.BestIdx, trained: raw.Trained}, nil
}
