package classify

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ctxmatch/internal/relational"
)

func TestNaiveBayesSeparatesVocabularies(t *testing.T) {
	nb := NewNaiveBayes()
	books := []string{"heart of darkness", "leaves of grass", "wasteland", "moby dick", "the trial"}
	cds := []string{"hotel california", "the white album", "abbey road", "rumours", "thriller"}
	for _, s := range books {
		nb.Train(relational.S(s), "book")
	}
	for _, s := range cds {
		nb.Train(relational.S(s), "cd")
	}
	if got, ok := nb.Classify(relational.S("heart of glass leaves")); !ok || got != "book" {
		t.Errorf("book-ish text classified as %q (ok=%v)", got, ok)
	}
	if got, ok := nb.Classify(relational.S("california hotel")); !ok || got != "cd" {
		t.Errorf("cd-ish text classified as %q (ok=%v)", got, ok)
	}
}

func TestNaiveBayesStructuredStrings(t *testing.T) {
	// ISBN-like digits vs ASIN-like codes: the discriminative case the
	// inventory data relies on.
	nb := NewNaiveBayes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		isbn := fmt.Sprintf("%010d", rng.Intn(1_000_000_000))
		nb.Train(relational.S(isbn), "isbn")
		asin := fmt.Sprintf("B%09X", rng.Intn(1<<31))
		nb.Train(relational.S(asin), "asin")
	}
	correct := 0
	for i := 0; i < 40; i++ {
		if got, _ := nb.Classify(relational.S(fmt.Sprintf("%010d", rng.Intn(1_000_000_000)))); got == "isbn" {
			correct++
		}
		if got, _ := nb.Classify(relational.S(fmt.Sprintf("B%09X", rng.Intn(1<<31)))); got == "asin" {
			correct++
		}
	}
	if correct < 68 { // 85% of 80: hex ASINs share digits with ISBNs
		t.Errorf("structured-string accuracy %d/80 too low", correct)
	}
}

func TestNaiveBayesEmpty(t *testing.T) {
	nb := NewNaiveBayes()
	if _, ok := nb.Classify(relational.S("x")); ok {
		t.Error("untrained classifier must report !ok")
	}
	if len(nb.Labels()) != 0 {
		t.Error("untrained classifier has no labels")
	}
}

func TestNaiveBayesPriorDominatesForUnseenText(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 9; i++ {
		nb.Train(relational.S("aaa"), "common")
	}
	nb.Train(relational.S("zzz"), "rare")
	// A value sharing no grams with training data follows the prior.
	if got, _ := nb.Classify(relational.S("qqq")); got != "common" {
		t.Errorf("unseen text classified as %q, want prior majority", got)
	}
}

func TestNaiveBayesLabelsSorted(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train(relational.S("x"), "zeta")
	nb.Train(relational.S("y"), "alpha")
	if got := nb.Labels(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("Labels = %v", got)
	}
}

func TestGaussianSeparatesDistributions(t *testing.T) {
	g := NewGaussian()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		g.Train(relational.F(10+rng.NormFloat64()*2), "low")
		g.Train(relational.F(50+rng.NormFloat64()*2), "high")
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if got, _ := g.Classify(relational.F(10 + rng.NormFloat64()*2)); got == "low" {
			correct++
		}
		if got, _ := g.Classify(relational.F(50 + rng.NormFloat64()*2)); got == "high" {
			correct++
		}
	}
	if correct < 195 {
		t.Errorf("gaussian accuracy %d/200 too low for well-separated data", correct)
	}
}

func TestGaussianOverlapDegradesGracefully(t *testing.T) {
	// As distributions overlap more, accuracy decreases — this is the
	// mechanism behind the Grades σ experiment (Figure 19).
	rng := rand.New(rand.NewSource(3))
	accuracy := func(sigma float64) float64 {
		g := NewGaussian()
		for i := 0; i < 300; i++ {
			g.Train(relational.F(40+rng.NormFloat64()*sigma), "a")
			g.Train(relational.F(50+rng.NormFloat64()*sigma), "b")
		}
		correct := 0
		for i := 0; i < 300; i++ {
			if got, _ := g.Classify(relational.F(40 + rng.NormFloat64()*sigma)); got == "a" {
				correct++
			}
			if got, _ := g.Classify(relational.F(50 + rng.NormFloat64()*sigma)); got == "b" {
				correct++
			}
		}
		return float64(correct) / 600
	}
	tight, loose := accuracy(2), accuracy(30)
	if tight < 0.95 {
		t.Errorf("σ=2 accuracy = %v, want near 1", tight)
	}
	if loose >= tight {
		t.Errorf("σ=30 accuracy %v should be worse than σ=2 accuracy %v", loose, tight)
	}
}

func TestGaussianPriorWeighting(t *testing.T) {
	g := NewGaussian()
	// Same distribution for both labels, but 9:1 prior.
	for i := 0; i < 90; i++ {
		g.Train(relational.F(10), "common")
	}
	for i := 0; i < 10; i++ {
		g.Train(relational.F(10), "rare")
	}
	if got, _ := g.Classify(relational.F(10)); got != "common" {
		t.Errorf("prior should break the tie: got %q", got)
	}
}

func TestGaussianConstantLabelNoInfiniteDensity(t *testing.T) {
	g := NewGaussian()
	for i := 0; i < 10; i++ {
		g.Train(relational.F(5), "const") // zero variance
		g.Train(relational.F(float64(i)), "spread")
	}
	// A value far from 5 must not be captured by the zero-variance label.
	if got, _ := g.Classify(relational.F(9)); got != "spread" {
		t.Errorf("far value classified as %q, want spread", got)
	}
	// A value at exactly 5 should go to the constant label.
	if got, _ := g.Classify(relational.F(5)); got != "const" {
		t.Errorf("exact value classified as %q, want const", got)
	}
}

func TestGaussianNonNumericInputs(t *testing.T) {
	g := NewGaussian()
	g.Train(relational.S("not a number"), "x") // ignored
	if _, ok := g.Classify(relational.F(1)); ok {
		t.Error("classifier with no numeric training data must report !ok")
	}
	for i := 0; i < 5; i++ {
		g.Train(relational.F(1), "a")
	}
	g.Train(relational.F(2), "b")
	// Unparseable test value falls back to majority.
	if got, ok := g.Classify(relational.S("??")); !ok || got != "a" {
		t.Errorf("non-numeric input → %q (ok=%v), want majority a", got, ok)
	}
}

func TestMajority(t *testing.T) {
	m := NewMajority()
	if _, ok := m.Classify(relational.Null); ok {
		t.Error("empty majority must report !ok")
	}
	if m.P() != 0 {
		t.Error("empty majority P should be 0")
	}
	m.Train(relational.S("ignored"), "b")
	m.Train(relational.Null, "a")
	m.Train(relational.Null, "a")
	if got, ok := m.Classify(relational.S("anything")); !ok || got != "a" {
		t.Errorf("majority = %q (ok=%v)", got, ok)
	}
	if m.Best() != "a" || m.P() != 2.0/3.0 {
		t.Errorf("Best=%q P=%v", m.Best(), m.P())
	}
	if got := m.Labels(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Labels = %v", got)
	}
}

func TestMajorityTieBreaksLexicographically(t *testing.T) {
	m := NewMajority()
	m.Train(relational.Null, "zeta")
	m.Train(relational.Null, "alpha")
	if m.Best() != "alpha" {
		t.Errorf("tie should break to alpha, got %q", m.Best())
	}
}

func TestForType(t *testing.T) {
	if _, ok := ForType(relational.Text).(*NaiveBayes); !ok {
		t.Error("Text should get NaiveBayes")
	}
	if _, ok := ForType(relational.String).(*NaiveBayes); !ok {
		t.Error("String should get NaiveBayes")
	}
	if _, ok := ForType(relational.Int).(*Gaussian); !ok {
		t.Error("Int should get Gaussian")
	}
	if _, ok := ForType(relational.Real).(*Gaussian); !ok {
		t.Error("Real should get Gaussian")
	}
	if _, ok := ForType(relational.Bool).(*Gaussian); !ok {
		t.Error("Bool should get Gaussian")
	}
}

func TestEvaluate(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train(relational.S("aaaa"), "a")
	nb.Train(relational.S("bbbb"), "b")
	vals := []relational.Value{relational.S("aaaa"), relational.S("bbbb"), relational.S("aaaa")}
	labels := []string{"a", "b", "b"} // last one is deliberately wrong
	if got := Evaluate(nb, vals, labels); got != 2 {
		t.Errorf("Evaluate = %d, want 2", got)
	}
	if got := Evaluate(NewNaiveBayes(), vals, labels); got != 0 {
		t.Errorf("untrained Evaluate = %d, want 0", got)
	}
}

// Property-ish check: classifier accuracy on its own training data beats
// the majority baseline when labels are actually separable.
func TestNaiveBayesBeatsBaselineOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nb := NewNaiveBayes()
	maj := NewMajority()
	var vals []relational.Value
	var labels []string
	for i := 0; i < 100; i++ {
		var v relational.Value
		var l string
		if rng.Intn(2) == 0 {
			v, l = relational.S(fmt.Sprintf("alpha-%d", rng.Intn(10))), "a"
		} else {
			v, l = relational.S(fmt.Sprintf("omega-%d", rng.Intn(10))), "b"
		}
		nb.Train(v, l)
		maj.Train(v, l)
		vals = append(vals, v)
		labels = append(labels, l)
	}
	nbCorrect := Evaluate(nb, vals, labels)
	majCorrect := Evaluate(maj, vals, labels)
	if nbCorrect <= majCorrect {
		t.Errorf("NaiveBayes (%d) should beat majority (%d) on separable data", nbCorrect, majCorrect)
	}
}
