package classify

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// randomValue draws a value from a mix of short strings, numbers,
// booleans, empty strings and NULLs — the full surface Classify must
// tolerate.
func randomValue(rng *rand.Rand) relational.Value {
	words := []string{"alpha", "beta", "Gamma Ray", "δéλτα", "x", "", "widget 42", "9.5"}
	switch rng.Intn(6) {
	case 0:
		return relational.S(words[rng.Intn(len(words))])
	case 1:
		return relational.S(fmt.Sprintf("%s %s", words[rng.Intn(len(words))], words[rng.Intn(len(words))]))
	case 2:
		return relational.I(rng.Intn(2000) - 1000)
	case 3:
		return relational.F(rng.NormFloat64() * 50)
	case 4:
		return relational.B(rng.Intn(2) == 0)
	default:
		return relational.Null
	}
}

// TestFrozenAgreesWithLive is the frozen/live equivalence property: for
// randomized training sets and randomized probe values — including
// labels never seen in training, empty strings and NULLs — the frozen
// classifier returns exactly the label (and label index) of its live
// counterpart.
func TestFrozenAgreesWithLive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := []string{"book.title", "book.price", "inv.name", "inv.qty"}
		nLabels := 1 + rng.Intn(len(labels))
		for _, build := range []func() Classifier{
			func() Classifier { return NewNaiveBayes() },
			func() Classifier { return NewGaussian() },
			func() Classifier { return NewMajority() },
		} {
			live := build()
			n := rng.Intn(60) // occasionally zero: the untrained case
			for i := 0; i < n; i++ {
				live.Train(randomValue(rng), labels[rng.Intn(nLabels)])
			}
			dict := tokenize.NewDict()
			frozen := Freeze(live, dict)
			dict.Freeze()
			for probe := 0; probe < 40; probe++ {
				v := randomValue(rng)
				wantLabel, wantOK := live.Classify(v)
				gotLabel, gotOK := frozen.Classify(v)
				if gotOK != wantOK || gotLabel != wantLabel {
					t.Logf("%T on %v: frozen (%q,%v) != live (%q,%v)",
						live, v, gotLabel, gotOK, wantLabel, wantOK)
					return false
				}
				idx, idxOK := frozen.ClassifyIndex(v)
				if idxOK != wantOK {
					return false
				}
				if wantOK && frozen.Labels()[idx] != wantLabel {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFrozenSeesThroughLaterInterning pins the OOV contract: grams
// interned into the shared dictionary *after* a classifier froze (e.g.
// by the target feature build) must classify exactly like grams the
// dictionary has never seen.
func TestFrozenSeesThroughLaterInterning(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train(relational.S("apple pie"), "food")
	nb.Train(relational.S("quartz rock"), "mineral")
	dict := tokenize.NewDict()
	frozen := nb.Freeze(dict)
	// Intern grams of a value unrelated to the training vocabulary.
	for g := range tokenize.TrigramSeq("zzyzx road") {
		dict.Intern(g)
	}
	dict.Freeze()
	for _, v := range []relational.Value{
		relational.S("zzyzx road"), // in dict, beyond the frozen table
		relational.S("unseen gramless"),
		relational.S(""),
		relational.Null,
	} {
		want, wantOK := nb.Classify(v)
		got, ok := frozen.Classify(v)
		if ok != wantOK || got != want {
			t.Errorf("Classify(%v) = %q,%v, live %q,%v", v, got, ok, want, wantOK)
		}
	}
}

func TestFrozenClassifyAllocsNothing(t *testing.T) {
	nb := NewNaiveBayes()
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a.x", "b.y", "c.z"}
	for i := 0; i < 200; i++ {
		nb.Train(randomValue(rng), labels[rng.Intn(len(labels))])
	}
	dict := tokenize.NewDict()
	frozen := nb.Freeze(dict)
	dict.Freeze()
	v := relational.S("alpha widget 42")
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := frozen.ClassifyIndex(v); !ok {
			t.Fatal("not trained")
		}
	}); n != 0 {
		t.Errorf("frozen Classify allocated %v times/op, want 0", n)
	}
}

// benchTrainedNB returns one live classifier trained like a target
// classifier (labels = target columns, many rows), plus its frozen form.
func benchTrainedNB(b *testing.B) (*NaiveBayes, *FrozenNaiveBayes) {
	b.Helper()
	nb := NewNaiveBayes()
	rng := rand.New(rand.NewSource(11))
	labels := []string{"book.title", "book.author", "book.publisher", "cd.artist", "cd.label", "dvd.studio"}
	words := []string{"quantum", "garden", "sonata", "metro", "ember", "willow", "cobalt", "merchant"}
	for i := 0; i < 3000; i++ {
		v := relational.S(words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))])
		nb.Train(v, labels[rng.Intn(len(labels))])
	}
	dict := tokenize.NewDict()
	f := nb.Freeze(dict)
	dict.Freeze()
	return nb, f
}

func BenchmarkNaiveBayesClassifyLive(b *testing.B) {
	nb, _ := benchTrainedNB(b)
	v := relational.S("cobalt garden express")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := nb.Classify(v); !ok {
			b.Fatal("untrained")
		}
	}
}

func BenchmarkNaiveBayesClassifyFrozen(b *testing.B) {
	_, f := benchTrainedNB(b)
	v := relational.S("cobalt garden express")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.ClassifyIndex(v); !ok {
			b.Fatal("untrained")
		}
	}
}

func BenchmarkGaussianClassifyFrozen(b *testing.B) {
	g := NewGaussian()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		g.Train(relational.F(rng.NormFloat64()*10+float64(i%3)*40), fmt.Sprintf("t.c%d", i%3))
	}
	f := g.Freeze()
	v := relational.F(41.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.ClassifyIndex(v); !ok {
			b.Fatal("untrained")
		}
	}
}
