package classify

import (
	"reflect"
	"testing"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// TestMergeNaiveBayesEqualsOnePass: merging per-group partials must
// reproduce the classifier a single pass over the same examples trains
// — identical internal state, and an identical frozen table.
func TestMergeNaiveBayesEqualsOnePass(t *testing.T) {
	groups := [][]struct{ text, label string }{
		{{"heart of darkness", "book.title"}, {"leaves of grass", "book.title"}, {"0-486-61272-4", "book.isbn"}},
		{{"abbey road", "music.album"}, {"hotel california", "music.album"}},
		{{"moby dick", "book.title"}, {"the trial", "book.title"}}, // book.title spans parts
	}
	one := NewNaiveBayes()
	parts := make([]*NaiveBayes, len(groups))
	for i, g := range groups {
		parts[i] = NewNaiveBayes()
		for _, ex := range g {
			one.Train(relational.S(ex.text), ex.label)
			parts[i].Train(relational.S(ex.text), ex.label)
		}
	}
	merged := MergeNaiveBayes(parts[0], nil, parts[1], parts[2])
	if !reflect.DeepEqual(merged.grams, one.grams) ||
		!reflect.DeepEqual(merged.gramTotals, one.gramTotals) ||
		!reflect.DeepEqual(merged.labelCounts, one.labelCounts) ||
		!reflect.DeepEqual(merged.vocab, one.vocab) ||
		merged.examples != one.examples {
		t.Error("merged state diverges from one-pass training")
	}

	// The frozen forms agree too: classify a held-out value through both.
	dm, d1 := tokenize.NewDict(), tokenize.NewDict()
	fm, f1 := merged.Freeze(dm), one.Freeze(d1)
	for _, probe := range []string{"wasteland", "rumours", "0-123-45678-9", ""} {
		gm, okm := fm.Classify(relational.S(probe))
		g1, ok1 := f1.Classify(relational.S(probe))
		if gm != g1 || okm != ok1 {
			t.Errorf("Classify(%q): merged %q/%v, one-pass %q/%v", probe, gm, okm, g1, ok1)
		}
	}
}

// TestMergeNaiveBayesNil: all-nil input means no compatible attribute
// anywhere — the merge reports that as nil rather than an empty
// classifier.
func TestMergeNaiveBayesNil(t *testing.T) {
	if MergeNaiveBayes() != nil {
		t.Error("empty merge produced a classifier")
	}
	if MergeNaiveBayes(nil, nil) != nil {
		t.Error("all-nil merge produced a classifier")
	}
	nb := NewNaiveBayes()
	nb.Train(relational.S("velvet stone"), "t.a")
	if got := MergeNaiveBayes(nil, nb); got == nil || len(got.grams) != 1 {
		t.Error("single-part merge lost the part")
	}
}
