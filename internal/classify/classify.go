// Package classify implements the classifiers behind the view-inference
// algorithms of §3.2: a Naive Bayes classifier over 3-grams for text
// attributes, a Gaussian ("statistical") classifier for numeric
// attributes, and the majority-class baseline CNaive that anchors the
// significance test of ClusteredViewGen.
package classify

import (
	"maps"
	"math"
	"slices"

	"ctxmatch/internal/relational"
	"ctxmatch/internal/tokenize"
)

// Classifier learns a mapping from attribute values to string labels.
// Implementations must tolerate labels never seen in training at
// Classify time by returning their best default.
type Classifier interface {
	// Train adds one (value, label) example.
	Train(v relational.Value, label string)
	// Classify predicts a label for v; ok is false if the classifier has
	// seen no training data at all.
	Classify(v relational.Value) (label string, ok bool)
	// Labels returns the distinct labels seen in training, sorted.
	Labels() []string
}

// ForType returns the classifier the paper prescribes for an attribute
// of type t (§3.2.3): Naive Bayes on 3-grams for text-like attributes, a
// Gaussian classifier for numeric ones. Booleans use the Gaussian
// classifier on their 0/1 embedding.
func ForType(t relational.Type) Classifier {
	if t.Domain() == relational.DomainString {
		return NewNaiveBayes()
	}
	return NewGaussian()
}

// NaiveBayes is a multinomial Naive Bayes classifier whose features are
// the 3-grams of the value text, with add-one (Laplace) smoothing.
type NaiveBayes struct {
	grams       map[string]map[string]float64 // label -> gram -> count
	gramTotals  map[string]float64            // label -> total gram count
	labelCounts map[string]float64            // label -> examples
	vocab       map[string]struct{}
	examples    float64
}

// NewNaiveBayes returns an empty classifier.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		grams:       map[string]map[string]float64{},
		gramTotals:  map[string]float64{},
		labelCounts: map[string]float64{},
		vocab:       map[string]struct{}{},
	}
}

// Train implements Classifier.
func (nb *NaiveBayes) Train(v relational.Value, label string) {
	nb.labelCounts[label]++
	nb.examples++
	g := nb.grams[label]
	if g == nil {
		g = map[string]float64{}
		nb.grams[label] = g
	}
	for _, gram := range tokenize.Trigrams(v.Str()) {
		g[gram]++
		nb.gramTotals[label]++
		nb.vocab[gram] = struct{}{}
	}
}

// Classify implements Classifier: arg max over labels of
// log P(label) + Σ log P(gram|label), Laplace-smoothed.
func (nb *NaiveBayes) Classify(v relational.Value) (string, bool) {
	if nb.examples == 0 {
		return "", false
	}
	grams := tokenize.Trigrams(v.Str())
	vocab := float64(len(nb.vocab)) + 1
	best, bestScore := "", math.Inf(-1)
	for _, label := range nb.Labels() {
		score := math.Log(nb.labelCounts[label] / nb.examples)
		total := nb.gramTotals[label] + vocab
		lg := nb.grams[label]
		for _, gram := range grams {
			score += math.Log((lg[gram] + 1) / total)
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	return best, true
}

// Labels implements Classifier.
func (nb *NaiveBayes) Labels() []string { return sortedKeys(nb.labelCounts) }

// Gaussian is the numeric "statistical classifier" of §3.2.3: it fits a
// normal distribution to the values of each label and classifies by
// maximum likelihood weighted by the label prior.
type Gaussian struct {
	sums   map[string]*gaussAcc
	global gaussAcc
}

type gaussAcc struct {
	n          float64
	sum, sumSq float64
}

func (a *gaussAcc) add(x float64) {
	a.n++
	a.sum += x
	a.sumSq += x * x
}

func (a *gaussAcc) meanVar() (mean, variance float64) {
	if a.n == 0 {
		return 0, 0
	}
	mean = a.sum / a.n
	variance = a.sumSq/a.n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// NewGaussian returns an empty classifier.
func NewGaussian() *Gaussian {
	return &Gaussian{sums: map[string]*gaussAcc{}}
}

// Train implements Classifier. Non-numeric values are ignored.
func (g *Gaussian) Train(v relational.Value, label string) {
	x, ok := v.Float()
	if !ok {
		return
	}
	acc := g.sums[label]
	if acc == nil {
		acc = &gaussAcc{}
		g.sums[label] = acc
	}
	acc.add(x)
	g.global.add(x)
}

// Classify implements Classifier. The per-label variance is floored at a
// fraction of the global variance so that constant-valued labels do not
// produce infinite densities.
func (g *Gaussian) Classify(v relational.Value) (string, bool) {
	if g.global.n == 0 {
		return "", false
	}
	x, ok := v.Float()
	if !ok {
		// Fall back to the most common label for unparseable input.
		return g.majority(), true
	}
	_, globalVar := g.global.meanVar()
	floor := globalVar * 1e-4
	if floor == 0 {
		floor = 1e-9
	}
	best, bestScore := "", math.Inf(-1)
	for _, label := range g.Labels() {
		acc := g.sums[label]
		mean, variance := acc.meanVar()
		if variance < floor {
			variance = floor
		}
		// log prior + log normal density.
		score := math.Log(acc.n/g.global.n) -
			0.5*math.Log(2*math.Pi*variance) -
			(x-mean)*(x-mean)/(2*variance)
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	return best, true
}

// Labels implements Classifier.
func (g *Gaussian) Labels() []string { return sortedKeys(g.sums) }

func (g *Gaussian) majority() string {
	best, bestN := "", -1.0
	for _, label := range g.Labels() {
		if n := g.sums[label].n; n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

// Majority is CNaive of §3.2.2: it always predicts the most common
// training label v*, regardless of the input value.
type Majority struct {
	counts map[string]int
	total  int
}

// NewMajority returns an empty baseline classifier.
func NewMajority() *Majority {
	return &Majority{counts: map[string]int{}}
}

// Train implements Classifier (the value is ignored).
func (m *Majority) Train(_ relational.Value, label string) {
	m.counts[label]++
	m.total++
}

// Classify implements Classifier, returning the majority label. Ties
// break lexicographically for determinism.
func (m *Majority) Classify(relational.Value) (string, bool) {
	if m.total == 0 {
		return "", false
	}
	return m.Best(), true
}

// Best returns the most common training label v*.
func (m *Majority) Best() string {
	best, bestN := "", -1
	for _, label := range sortedKeys(m.counts) {
		if n := m.counts[label]; n > bestN {
			best, bestN = label, n
		}
	}
	return best
}

// P returns the training frequency |v*|/n of the majority label: the
// success probability of the binomial null model in §3.2.2.
func (m *Majority) P() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.counts[m.Best()]) / float64(m.total)
}

// Labels implements Classifier.
func (m *Majority) Labels() []string { return sortedKeys(m.counts) }

func sortedKeys[V any](m map[string]V) []string {
	return slices.Sorted(maps.Keys(m))
}

// Evaluate runs a trained classifier over labelled test pairs and returns
// the number of correct predictions, the basis of both MicroF1 and the
// significance test.
func Evaluate(c Classifier, values []relational.Value, labels []string) (correct int) {
	for i, v := range values {
		if got, ok := c.Classify(v); ok && got == labels[i] {
			correct++
		}
	}
	return correct
}
