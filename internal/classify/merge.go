package classify

import "maps"

// MergeNaiveBayes combines independently trained Naive Bayes partials
// into one classifier equal, bit for bit, to training a single
// classifier over the same examples in parts order. All accumulated
// state is integer-valued counts stored in float64, so the merge's
// additions are exact: summing per-part totals reproduces the one-pass
// sums regardless of grouping. Nil parts are skipped; nil is returned
// when every part is nil (no compatible attribute anywhere).
//
// When a label appears in exactly one part — the target-classifier case,
// where labels are table-qualified — the merged classifier shares that
// part's per-label gram maps; parts must therefore not be trained
// further after merging. Labels spanning parts are cloned and summed.
func MergeNaiveBayes(parts ...*NaiveBayes) *NaiveBayes {
	var out *NaiveBayes
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = NewNaiveBayes()
		}
		for label, lg := range p.grams {
			if exist, ok := out.grams[label]; ok {
				merged := maps.Clone(exist)
				for gram, n := range lg {
					merged[gram] += n
				}
				out.grams[label] = merged
			} else {
				out.grams[label] = lg
			}
		}
		for label, n := range p.gramTotals {
			out.gramTotals[label] += n
		}
		for label, n := range p.labelCounts {
			out.labelCounts[label] += n
		}
		for gram := range p.vocab {
			out.vocab[gram] = struct{}{}
		}
		out.examples += p.examples
	}
	return out
}
