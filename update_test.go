package ctxmatch_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ctxmatch"
	"ctxmatch/internal/match"
)

// fixtureDelta builds a delta exercising all three edit kinds against
// ds's target: the first table replaced with a row-changed copy, a new
// table appended, and (when the catalog has more than one table) the
// last table dropped.
func fixtureDelta(target *ctxmatch.Schema) ctxmatch.CatalogDelta {
	first := target.Tables[0]
	replaced := &ctxmatch.Table{
		Name:  first.Name,
		Attrs: first.Attrs,
		Rows:  first.Rows[:len(first.Rows)/2],
	}
	added := &ctxmatch.Table{
		Name:  "delta_added",
		Attrs: first.Attrs,
		Rows:  first.Rows[len(first.Rows)/2:],
	}
	delta := ctxmatch.CatalogDelta{
		Replace: []*ctxmatch.Table{replaced},
		Add:     []*ctxmatch.Table{added},
	}
	if n := len(target.Tables); n > 1 {
		delta.Drop = []string{target.Tables[n-1].Name}
	}
	return delta
}

// TestUpdateMatchesFreshPrepare is the incremental-prepare correctness
// bar: Target.Update must produce match results byte-identical — every
// confidence bit — to a from-scratch Prepare of the updated catalog,
// across all three fixtures, the exhaustive and the indexed engine, and
// 1 and 8 workers. It also pins the "incremental" claim: the update
// goes through the delta path (TargetUpdates advances) without a full
// feature precompute (TargetPrecomputes does not).
func TestUpdateMatchesFreshPrepare(t *testing.T) {
	for name, ds := range snapshotFixtures() {
		t.Run(name, func(t *testing.T) {
			type run struct {
				workers    int
				exhaustive bool
			}
			for _, r := range []run{
				{1, true}, {1, false}, {8, true}, {8, false},
			} {
				eng := match.NewEngine()
				eng.Exhaustive = r.exhaustive
				m := mustNew(t,
					ctxmatch.WithEngine(eng),
					ctxmatch.WithParallelism(r.workers),
					ctxmatch.WithSeed(5),
				)
				base, err := m.Prepare(context.Background(), ds.Target)
				if err != nil {
					t.Fatalf("%+v: Prepare: %v", r, err)
				}

				precomputes, updates := match.TargetPrecomputes(), match.TargetUpdates()
				updated, err := base.Update(context.Background(), fixtureDelta(ds.Target))
				if err != nil {
					t.Fatalf("%+v: Update: %v", r, err)
				}
				if got := match.TargetUpdates() - updates; got != 1 {
					t.Errorf("%+v: Update performed %d delta feature rebuilds, want 1", r, got)
				}
				if got := match.TargetPrecomputes() - precomputes; got != 0 {
					t.Errorf("%+v: Update performed %d full feature precomputes, want 0", r, got)
				}

				// A fresh matcher (fresh cache) prepares the updated schema
				// from scratch — the bit-identity reference.
				eng2 := match.NewEngine()
				eng2.Exhaustive = r.exhaustive
				m2 := mustNew(t,
					ctxmatch.WithEngine(eng2),
					ctxmatch.WithParallelism(r.workers),
					ctxmatch.WithSeed(5),
				)
				fresh, err := m2.Prepare(context.Background(), updated.Schema())
				if err != nil {
					t.Fatalf("%+v: fresh Prepare of updated schema: %v", r, err)
				}

				us, fs := updated.Stats(), fresh.Stats()
				if us.Tables != fs.Tables || us.Rows != fs.Rows || us.Attributes != fs.Attributes {
					t.Errorf("%+v: updated catalog sized %d/%d/%d, fresh %d/%d/%d",
						r, us.Tables, us.Rows, us.Attributes, fs.Tables, fs.Rows, fs.Attributes)
				}
				if us.FeatureColumns != fs.FeatureColumns {
					t.Errorf("%+v: updated FeatureColumns=%d, fresh %d", r, us.FeatureColumns, fs.FeatureColumns)
				}
				if us.IndexPostings != fs.IndexPostings {
					t.Errorf("%+v: updated IndexPostings=%d, fresh %d", r, us.IndexPostings, fs.IndexPostings)
				}
				if us.Classifiers != fs.Classifiers {
					t.Errorf("%+v: updated Classifiers=%d, fresh %d", r, us.Classifiers, fs.Classifiers)
				}

				got, err := updated.Match(context.Background(), ds.Source)
				if err != nil {
					t.Fatalf("%+v: updated Match: %v", r, err)
				}
				want, err := fresh.Match(context.Background(), ds.Source)
				if err != nil {
					t.Fatalf("%+v: fresh Match: %v", r, err)
				}
				gs, ws := renderResult(got), renderResult(want)
				if ws == "" {
					t.Fatalf("%+v: empty result", r)
				}
				if gs != ws {
					t.Errorf("%+v: updated handle diverged from fresh prepare:\n got: %s\nwant: %s",
						r, excerptDiff(gs, ws), excerptDiff(ws, gs))
				}

				// The old handle must keep serving its own catalog unchanged
				// — the atomic-swap drain story.
				if _, err := base.Match(context.Background(), ds.Source); err != nil {
					t.Errorf("%+v: base handle broken after Update: %v", r, err)
				}
			}
		})
	}
}

// TestUpdateChained applies two deltas back to back — the composing
// case PATCH serialization relies on — and checks the final handle
// against a from-scratch Prepare.
func TestUpdateChained(t *testing.T) {
	ds := snapshotFixtures()["inventory"]
	m := mustNew(t, ctxmatch.WithParallelism(2), ctxmatch.WithSeed(5))
	base, err := m.Prepare(context.Background(), ds.Target)
	if err != nil {
		t.Fatal(err)
	}
	step1, err := base.Update(context.Background(), fixtureDelta(ds.Target))
	if err != nil {
		t.Fatalf("first Update: %v", err)
	}
	// Second delta: drop the table the first delta added, and restore
	// the replaced table to its original rows.
	step2, err := step1.Update(context.Background(), ctxmatch.CatalogDelta{
		Replace: []*ctxmatch.Table{ds.Target.Tables[0]},
		Drop:    []string{"delta_added"},
	})
	if err != nil {
		t.Fatalf("second Update: %v", err)
	}
	m2 := mustNew(t, ctxmatch.WithParallelism(2), ctxmatch.WithSeed(5))
	fresh, err := m2.Prepare(context.Background(), step2.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := step2.Match(context.Background(), ds.Source)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Match(context.Background(), ds.Source)
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := renderResult(got), renderResult(want); gs != ws {
		t.Errorf("chained updates diverged:\n got: %s\nwant: %s",
			excerptDiff(gs, ws), excerptDiff(ws, gs))
	}
}

// TestUpdateRestoredFallsBack: a handle restored from a snapshot has no
// delta provenance; Update must still work — via a full rebuild — and
// still be bit-identical to a fresh Prepare of the updated catalog.
func TestUpdateRestoredFallsBack(t *testing.T) {
	ds := snapshotFixtures()["inventory"]
	m := mustNew(t, ctxmatch.WithParallelism(2), ctxmatch.WithSeed(5))
	base, err := m.Prepare(context.Background(), ds.Target)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := base.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ctxmatch.LoadTarget(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	updated, err := restored.Update(context.Background(), fixtureDelta(ds.Target))
	if err != nil {
		t.Fatalf("Update on restored handle: %v", err)
	}
	m2 := mustNew(t, ctxmatch.WithParallelism(2), ctxmatch.WithSeed(5))
	fresh, err := m2.Prepare(context.Background(), updated.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := updated.Match(context.Background(), ds.Source)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Match(context.Background(), ds.Source)
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := renderResult(got), renderResult(want); gs != ws {
		t.Errorf("restored-handle update diverged:\n got: %s\nwant: %s",
			excerptDiff(gs, ws), excerptDiff(ws, gs))
	}
}

// TestUpdateInvalidDeltas: every structurally bad delta is rejected
// with ErrInvalidDelta before any work runs, and dropping the whole
// catalog reports ErrEmptySchema.
func TestUpdateInvalidDeltas(t *testing.T) {
	ds := snapshotFixtures()["inventory"]
	m := mustNew(t, ctxmatch.WithParallelism(2))
	base, err := m.Prepare(context.Background(), ds.Target)
	if err != nil {
		t.Fatal(err)
	}
	first := ds.Target.Tables[0]
	cases := map[string]ctxmatch.CatalogDelta{
		"empty":           {},
		"replace unknown": {Replace: []*ctxmatch.Table{{Name: "nope", Attrs: first.Attrs}}},
		"drop unknown":    {Drop: []string{"nope"}},
		"add existing":    {Add: []*ctxmatch.Table{first}},
		"nil add":         {Add: []*ctxmatch.Table{nil}},
		"nil replace":     {Replace: []*ctxmatch.Table{nil}},
		"unnamed add":     {Add: []*ctxmatch.Table{{Attrs: first.Attrs}}},
		"duplicate name":  {Replace: []*ctxmatch.Table{first}, Drop: []string{first.Name}},
		"double drop":     {Drop: []string{first.Name, first.Name}},
	}
	for name, delta := range cases {
		if _, err := base.Update(context.Background(), delta); !errors.Is(err, ctxmatch.ErrInvalidDelta) {
			t.Errorf("%s: err = %v, want ErrInvalidDelta", name, err)
		}
	}
	var names []string
	for _, tt := range ds.Target.Tables {
		names = append(names, tt.Name)
	}
	if _, err := base.Update(context.Background(), ctxmatch.CatalogDelta{Drop: names}); !errors.Is(err, ctxmatch.ErrEmptySchema) {
		t.Errorf("drop-everything: err = %v, want ErrEmptySchema", err)
	}
}

// TestUpdateCarriesTrafficStats: the match counter survives an update,
// and LiveStats agrees with Stats without the full artifact walk.
func TestUpdateCarriesTrafficStats(t *testing.T) {
	ds := snapshotFixtures()["inventory"]
	m := mustNew(t, ctxmatch.WithParallelism(2))
	base, err := m.Prepare(context.Background(), ds.Target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Match(context.Background(), ds.Source); err != nil {
		t.Fatal(err)
	}
	updated, err := base.Update(context.Background(), fixtureDelta(ds.Target))
	if err != nil {
		t.Fatal(err)
	}
	if got := updated.Stats().Matches; got != 1 {
		t.Errorf("updated handle Matches = %d, want 1 (carried over)", got)
	}
	ls, st := updated.LiveStats(), updated.Stats()
	if ls.Matches != st.Matches || ls.IndexHitRate != st.IndexHitRate {
		t.Errorf("LiveStats %+v disagrees with Stats (matches=%d hitRate=%v)",
			ls, st.Matches, st.IndexHitRate)
	}
}
