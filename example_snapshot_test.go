package ctxmatch_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"ctxmatch"
)

// ExampleTarget_WriteSnapshot shows the snapshot round trip: prepare a
// catalog once, serialize the handle, and restore it with LoadTarget —
// no re-training, no column scans, and the restored handle matches
// bit-identically to the one that wrote it. The same bytes are what
// `ctxmatch snapshot` builds offline and what the ctxmatchd daemon
// serves and accepts on /v1/catalogs/{name}/snapshot.
func ExampleTarget_WriteSnapshot() {
	book, err := ctxmatch.ReadCSV("book", strings.NewReader(
		"title:text,price:real\nHamlet,6.10\nKind of Blue,9.90\nDubliners,7.25\n"))
	if err != nil {
		log.Fatal(err)
	}
	catalog := ctxmatch.NewSchema("RT", book)

	matcher, err := ctxmatch.New()
	if err != nil {
		log.Fatal(err)
	}
	prepared, err := matcher.Prepare(context.Background(), catalog)
	if err != nil {
		log.Fatal(err)
	}

	// Serialize once — to a file, an object store, or an HTTP body.
	var buf bytes.Buffer
	if _, err := prepared.WriteSnapshot(&buf); err != nil {
		log.Fatal(err)
	}

	// Restore anywhere, in milliseconds: corrupt or arbitrary bytes fail
	// with an error wrapping one of the ErrSnapshot* sentinels.
	restored, err := ctxmatch.LoadTarget(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	st := restored.Stats()
	fmt.Printf("restored=%v tables=%d rows=%d\n",
		st.RestoredFromSnapshot, st.Tables, st.Rows)
	// Output: restored=true tables=1 rows=3
}
