package ctxmatch

import (
	"io"
	"time"

	"ctxmatch/internal/core"
	"ctxmatch/internal/snapshot"
)

// Structured errors of the snapshot codec. Every LoadTarget failure
// wraps exactly one of them; test with errors.Is.
var (
	// ErrSnapshotFormat reports bytes that are not a snapshot, or a
	// structurally corrupt one.
	ErrSnapshotFormat = snapshot.ErrFormat
	// ErrSnapshotVersion reports a snapshot written by a format version
	// this build does not read.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum reports a snapshot section whose payload fails
	// its CRC32.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotTruncated reports a snapshot shorter than its header
	// declares.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotUnsupported reports content the snapshot format cannot
	// carry — a custom matcher type, a view table — or does not know.
	ErrSnapshotUnsupported = snapshot.ErrUnsupported
)

// WriteSnapshot serializes the prepared handle — the target schema with
// its sample instance, the matching configuration, and every compiled
// artifact (frozen gram dictionary, column feature vectors, candidate
// index postings, classifier log-likelihood tables) — into a versioned
// binary snapshot, returning the bytes written. LoadTarget restores the
// handle without re-preparing: a restored Target produces byte-identical
// results to this one.
//
// Snapshots are how prepared catalogs become build artifacts: prepare
// once (or build offline with the ctxmatch CLI), ship the snapshot to N
// serving nodes, and each restores in milliseconds instead of paying
// the training and column-scan cost of Prepare.
func (t *Target) WriteSnapshot(w io.Writer) (int64, error) {
	return t.prep.WriteSnapshot(w)
}

// LoadTarget restores a prepared-target handle from a snapshot written
// by WriteSnapshot. No training and no column scanning happens: the
// numeric artifact tables are reconstructed by reference to one
// contiguous buffer. The handle matches bit-identically to the one that
// wrote the snapshot, and carries its own Matcher configured with the
// snapshot's options (Target.MatchTarget trains source-side artifacts
// through it on demand, exactly as a fresh handle would).
//
// Arbitrary or corrupt input fails with an error wrapping one of the
// ErrSnapshot* sentinels — never a panic. Stats on the restored handle
// reports SnapshotBytes and RestoredFromSnapshot.
func LoadTarget(r io.Reader) (*Target, error) {
	start := time.Now()
	pt, err := core.LoadPreparedTarget(r)
	if err != nil {
		return nil, err
	}
	m := &Matcher{opt: pt.Options(), cache: core.NewTargetCache()}
	return &Target{m: m, prep: pt, schema: pt.Target(), prepTime: time.Since(start)}, nil
}
